/**
 * @file
 * Tests for the prophunt::api engine surface: decoder registry
 * round-trips, artifact-cache determinism, async submission, the
 * api::Config layer, and SPRT adaptive sweeps.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>

#include "api/config.h"
#include "api/engine.h"
#include "api/sprt.h"
#include "circuit/surface_schedules.h"
#include "code/surface.h"
#include "decoder/logical_error.h"
#include "decoder/registry.h"
#include "sim/dem_builder.h"

using namespace prophunt;

namespace {

circuit::SmSchedule
d3Schedule()
{
    code::SurfaceCode s(3);
    return circuit::nzSchedule(s);
}

struct SmallModel
{
    circuit::SmCircuit circuit;
    sim::Dem dem;
};

SmallModel
smallModel()
{
    SmallModel m;
    m.circuit = circuit::buildMemoryCircuit(d3Schedule(), 3,
                                            circuit::MemoryBasis::Z);
    m.dem = sim::buildDem(m.circuit, sim::NoiseModel::uniform(1e-3));
    return m;
}

} // namespace

// --- registry ---------------------------------------------------------------

TEST(Registry, EveryRegisteredNameConstructs)
{
    SmallModel m = smallModel();
    auto names = decoder::Registry::instance().names();
    ASSERT_GE(names.size(), 3u);
    for (const std::string &name : names) {
        auto dec = decoder::Registry::make(name, m.dem, m.circuit);
        ASSERT_NE(dec, nullptr) << name;
        // Empty syndrome decodes to the trivial correction everywhere.
        EXPECT_EQ(dec->decode({}), 0u) << name;
        // Clones are independent and construct from every backend.
        EXPECT_NE(dec->clone(), nullptr) << name;
    }
}

TEST(Registry, KnownNamesPresent)
{
    auto &reg = decoder::Registry::instance();
    EXPECT_TRUE(reg.has("union_find"));
    EXPECT_TRUE(reg.has("matching"));
    EXPECT_TRUE(reg.has("bp_osd"));
    EXPECT_TRUE(reg.has("mle"));
    EXPECT_FALSE(reg.has("no_such_decoder"));
}

TEST(Registry, UnknownNameErrorsCleanly)
{
    SmallModel m = smallModel();
    try {
        decoder::Registry::make("no_such_decoder", m.dem, m.circuit);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("no_such_decoder"), std::string::npos);
        EXPECT_NE(msg.find("bp_osd"), std::string::npos)
            << "error should list the registered names";
    }
}

TEST(Registry, MismatchedOptionsThrow)
{
    SmallModel m = smallModel();
    decoder::DecoderSpec spec{"union_find",
                              decoder::BpOsdOptions{}};
    EXPECT_THROW(decoder::Registry::make(spec, m.dem, m.circuit),
                 std::invalid_argument);
}

TEST(Registry, PerDecoderOptionsApply)
{
    SmallModel m = smallModel();
    decoder::BpOsdOptions bp;
    bp.stagnationWindow = 0;
    EXPECT_NE(decoder::Registry::make({"bp_osd", bp}, m.dem, m.circuit),
              nullptr);
    decoder::MleOptions mle;
    mle.maxWeight = 2;
    EXPECT_NE(decoder::Registry::make({"mle", mle}, m.dem, m.circuit),
              nullptr);
}

TEST(Registry, SpecDescribeDistinguishesOptions)
{
    decoder::BpOsdOptions a, b;
    b.stagnationWindow = 0;
    EXPECT_NE(decoder::DecoderSpec("bp_osd", a).describe(),
              decoder::DecoderSpec("bp_osd", b).describe());
    EXPECT_EQ(decoder::DecoderSpec("bp_osd", a).describe(),
              decoder::DecoderSpec("bp_osd", a).describe());
}

// --- schedule hashing -------------------------------------------------------

TEST(ScheduleHash, EqualSchedulesHashEqual)
{
    EXPECT_EQ(api::hashSchedule(d3Schedule()),
              api::hashSchedule(d3Schedule()));
}

TEST(ScheduleHash, DifferentSchedulesHashDifferent)
{
    code::SurfaceCode s(3);
    EXPECT_NE(api::hashSchedule(circuit::nzSchedule(s)),
              api::hashSchedule(circuit::poorSurfaceSchedule(s)));
}

// --- engine -----------------------------------------------------------------

namespace {

api::LerRequest
d3Request(std::size_t threads)
{
    api::LerRequest req(d3Schedule());
    req.rounds = 3;
    req.noise = sim::NoiseModel::uniform(3e-3);
    req.decoder = "union_find";
    req.shots = 4000;
    req.seed = 77;
    req.ler.threads = threads;
    return req;
}

} // namespace

TEST(Engine, MatchesMeasureMemoryLerBitForBit)
{
    api::Engine engine;
    api::LerRequest req = d3Request(1);
    api::LerResult viaEngine = engine.run(req);
    decoder::LerOptions opts;
    opts.threads = 1;
    decoder::MemoryLer direct = decoder::measureMemoryLer(
        req.schedule, 3, req.noise, "union_find", 4000, 77, opts);
    EXPECT_EQ(viaEngine.memory.z.failures, direct.z.failures);
    EXPECT_EQ(viaEngine.memory.z.shots, direct.z.shots);
    EXPECT_EQ(viaEngine.memory.x.failures, direct.x.failures);
    EXPECT_EQ(viaEngine.memory.x.shots, direct.x.shots);
    EXPECT_EQ(viaEngine.telemetry.shots, 8000u);
}

TEST(Engine, ZeroShotRequestReturnsEmptyWellFormedResult)
{
    // shots == 0 must not go through the generic shard math (or even the
    // artifact build): an empty result with zeroed telemetry.
    api::Engine engine;
    api::LerRequest req = d3Request(1);
    req.shots = 0;
    api::LerResult r = engine.run(req);
    EXPECT_EQ(r.memory.z.shots, 0u);
    EXPECT_EQ(r.memory.x.shots, 0u);
    EXPECT_EQ(r.memory.z.failures, 0u);
    EXPECT_EQ(r.memory.x.failures, 0u);
    EXPECT_FALSE(r.memory.z.earlyStopped);
    EXPECT_EQ(r.ler(), 0.0);
    EXPECT_EQ(r.telemetry.shots, 0u);
    EXPECT_EQ(r.telemetry.buildUs, 0u);
    EXPECT_EQ(r.telemetry.decodeUs, 0u);
    EXPECT_EQ(r.telemetry.cacheHits, 0u);
    EXPECT_EQ(r.telemetry.cacheMisses, 0u);
    EXPECT_EQ(r.telemetry.packed.packedShots, 0u);
    EXPECT_EQ(r.telemetry.packed.adapterShots, 0u);
    EXPECT_EQ(r.telemetry.reusedShots, 0u);
    EXPECT_EQ(r.telemetry.coalescedRequests, 0u);
    EXPECT_EQ(r.telemetry.workSteals, 0u);
    EXPECT_EQ(r.telemetry.queueDepth, 0u);
    api::Engine::CacheStats stats = engine.cacheStats();
    EXPECT_EQ(stats.circuitEntries, 0u);
    EXPECT_EQ(stats.demEntries, 0u);

    // Zero shots per point in a sweep: well-formed empty points.
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1e-3, 3e-3};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 0;
    api::SweepResult sr = engine.run(sweep);
    ASSERT_EQ(sr.points.size(), 2u);
    for (const api::SweepPointResult &pt : sr.points) {
        EXPECT_EQ(pt.memory.z.shots, 0u);
        EXPECT_EQ(pt.memory.x.shots, 0u);
        EXPECT_EQ(pt.decision, api::SprtDecision::None);
        EXPECT_EQ(pt.telemetry.shots, 0u);
        EXPECT_EQ(pt.telemetry.cacheMisses, 0u);
    }
    EXPECT_EQ(sr.telemetry.shots, 0u);
}

TEST(Engine, ShardLargerThanShotsClampsToOneShard)
{
    // shardShots > shots must behave exactly like a single exact-fit
    // shard, not fall into degenerate shard math.
    api::Engine engine;
    api::LerRequest big = d3Request(1);
    big.shots = 100;
    big.ler.shardShots = 4096;
    api::LerRequest exact = d3Request(1);
    exact.shots = 100;
    exact.ler.shardShots = 100;
    api::LerResult a = engine.run(big);
    api::LerResult b = engine.run(exact);
    EXPECT_EQ(a.memory.z.shots, 100u);
    EXPECT_EQ(a.memory.x.shots, 100u);
    EXPECT_EQ(a.memory.z.failures, b.memory.z.failures);
    EXPECT_EQ(a.memory.x.failures, b.memory.x.failures);
    EXPECT_EQ(a.telemetry.shots, 200u);
}

TEST(Engine, CacheOnOffBitIdenticalAcrossThreadCounts)
{
    api::EngineOptions cached;
    api::EngineOptions uncached;
    uncached.cacheEnabled = false;
    api::Engine cachedEngine(cached);
    api::Engine uncachedEngine(uncached);

    api::LerResult reference = cachedEngine.run(d3Request(1));
    for (std::size_t threads : {1u, 2u, 3u}) {
        api::LerRequest req = d3Request(threads);
        api::LerResult a = cachedEngine.run(req);
        api::LerResult b = uncachedEngine.run(req);
        for (const api::LerResult *r : {&a, &b}) {
            EXPECT_EQ(r->memory.z.failures, reference.memory.z.failures)
                << "threads=" << threads;
            EXPECT_EQ(r->memory.x.failures, reference.memory.x.failures)
                << "threads=" << threads;
            EXPECT_EQ(r->memory.z.shots, reference.memory.z.shots);
            EXPECT_EQ(r->memory.x.shots, reference.memory.x.shots);
        }
    }
}

TEST(Engine, CacheHitsReported)
{
    api::Engine engine;
    api::LerResult first = engine.run(d3Request(1));
    EXPECT_EQ(first.telemetry.cacheHits, 0u);
    EXPECT_GT(first.telemetry.cacheMisses, 0u);
    EXPECT_GT(first.telemetry.buildUs, 0u);

    api::LerResult second = engine.run(d3Request(1));
    EXPECT_GT(second.telemetry.cacheHits, 0u);
    EXPECT_EQ(second.telemetry.cacheMisses, 0u);
    EXPECT_EQ(second.telemetry.buildUs, 0u)
        << "cache hits must not rebuild artifacts";

    auto stats = engine.cacheStats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.demEntries, 0u);

    engine.clearCache();
    stats = engine.cacheStats();
    EXPECT_EQ(stats.demEntries, 0u);
    EXPECT_EQ(stats.circuitEntries, 0u);
}

TEST(Engine, CacheDisabledNeverHits)
{
    api::EngineOptions opts;
    opts.cacheEnabled = false;
    api::Engine engine(opts);
    engine.run(d3Request(1));
    api::LerResult second = engine.run(d3Request(1));
    EXPECT_EQ(second.telemetry.cacheHits, 0u);
    EXPECT_GT(second.telemetry.cacheMisses, 0u);
}

TEST(Engine, CrossRequestShotReuseIsExactAndMonotone)
{
    // An identical re-run must be satisfied from the decode service's
    // recorded shard tallies: bit-identical counts, every shot reused,
    // and the service-lifetime reuse counter grows monotonically.
    api::Engine engine;
    api::LerResult first = engine.run(d3Request(1));
    EXPECT_EQ(first.telemetry.reusedShots, 0u);
    EXPECT_EQ(engine.serviceStats().reusedShots, 0u);

    api::LerResult second = engine.run(d3Request(1));
    EXPECT_EQ(second.memory.z.failures, first.memory.z.failures);
    EXPECT_EQ(second.memory.x.failures, first.memory.x.failures);
    EXPECT_EQ(second.memory.z.shots, first.memory.z.shots);
    EXPECT_EQ(second.memory.x.shots, first.memory.x.shots);
    EXPECT_EQ(second.telemetry.shots, 8000u);
    EXPECT_EQ(second.telemetry.reusedShots, 8000u)
        << "both bases of an identical request must reuse recorded shots";
    EXPECT_EQ(engine.serviceStats().reusedShots, 8000u);

    api::LerResult third = engine.run(d3Request(1));
    EXPECT_EQ(third.telemetry.reusedShots, 8000u);
    EXPECT_EQ(engine.serviceStats().reusedShots, 16000u);

    // A different seed is a different sample stream: no reuse, and the
    // lifetime counter must not move.
    api::LerRequest fresh = d3Request(1);
    fresh.seed = 78;
    api::LerResult other = engine.run(fresh);
    EXPECT_EQ(other.telemetry.reusedShots, 0u);
    EXPECT_EQ(engine.serviceStats().reusedShots, 16000u);
}

TEST(Engine, ShotReuseEvictionUnderFifoTallyBound)
{
    // Each basis records its own tally stream, so a bound of 1 makes
    // the X run evict the Z tallies and vice versa: a re-run reuses
    // nothing. A bound of 2 holds both streams and reuses everything.
    api::EngineOptions tight;
    tight.service.maxTallyKeys = 1;
    api::Engine small(tight);
    api::LerResult ref = small.run(d3Request(1));
    api::LerResult rerun = small.run(d3Request(1));
    EXPECT_EQ(rerun.telemetry.reusedShots, 0u);
    EXPECT_EQ(rerun.memory.z.failures, ref.memory.z.failures);
    EXPECT_EQ(rerun.memory.x.failures, ref.memory.x.failures);

    api::EngineOptions roomy;
    roomy.service.maxTallyKeys = 2;
    api::Engine big(roomy);
    big.run(d3Request(1));
    api::LerResult kept = big.run(d3Request(1));
    EXPECT_EQ(kept.telemetry.reusedShots, 8000u);
    EXPECT_EQ(kept.memory.z.failures, ref.memory.z.failures);
    EXPECT_EQ(kept.memory.x.failures, ref.memory.x.failures);
}

TEST(Engine, ShotReuseDisabledThroughServiceOptions)
{
    api::EngineOptions opts;
    opts.service.reuseShots = false;
    api::Engine engine(opts);
    api::LerResult first = engine.run(d3Request(1));
    api::LerResult second = engine.run(d3Request(1));
    EXPECT_EQ(second.telemetry.reusedShots, 0u);
    EXPECT_EQ(second.memory.z.failures, first.memory.z.failures);
    EXPECT_EQ(second.memory.x.failures, first.memory.x.failures);
    EXPECT_EQ(engine.serviceStats().reusedShots, 0u);
}

TEST(Engine, FlaggedCircuitsCachedSeparately)
{
    api::Engine engine;
    engine.run(d3Request(1));
    api::LerRequest flagged = d3Request(1);
    flagged.shots = 500;
    flagged.flagWeight = 4;
    api::LerResult f = engine.run(flagged);
    EXPECT_EQ(f.telemetry.cacheHits, 0u)
        << "a flagged request must not reuse the plain circuit";
    EXPECT_GT(f.telemetry.cacheMisses, 0u);
    EXPECT_EQ(f.telemetry.shots, 1000u);
}

TEST(Engine, SweepMatchesPointwiseRuns)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1e-3, 3e-3};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 2000;
    sweep.seed = 5;
    sweep.ler.threads = 1;
    api::SweepResult result = engine.run(sweep);
    ASSERT_EQ(result.points.size(), 2u);

    for (std::size_t i = 0; i < sweep.ps.size(); ++i) {
        api::LerRequest req(sweep.schedule);
        req.rounds = 3;
        req.noise = sim::NoiseModel::uniform(sweep.ps[i]);
        req.decoder = "union_find";
        req.shots = 2000;
        req.seed = 5;
        req.ler.threads = 1;
        api::LerResult point = engine.run(req);
        EXPECT_EQ(result.points[i].memory.z.failures,
                  point.memory.z.failures);
        EXPECT_EQ(result.points[i].memory.x.failures,
                  point.memory.x.failures);
        EXPECT_EQ(result.points[i].decision, api::SprtDecision::None);
    }
    EXPECT_EQ(result.totalShots(), 8000u);
}

TEST(Engine, SweepRejectsSprtWithoutDecisionLer)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1e-3};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 100;
    sweep.sprt.enabled = true; // decisionLer left at its 0.0 default
    try {
        engine.run(sweep);
        FAIL() << "expected std::invalid_argument at admission";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("decisionLer"),
                  std::string::npos)
            << "error should say which field to set: " << e.what();
    }
}

TEST(Engine, SweepRejectsShardIndexOutsideCount)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1e-3};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 100;
    sweep.shard.index = 3;
    sweep.shard.count = 2;
    EXPECT_THROW(engine.run(sweep), std::invalid_argument);
}

TEST(Engine, SweepCancelledBeforeStartReturnsEmptyResult)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1e-3, 3e-3};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 2000;
    std::atomic<bool> cancel{true};
    sweep.cancel = &cancel;
    api::SweepResult result = engine.run(sweep);
    EXPECT_TRUE(result.points.empty())
        << "a pre-cancelled sweep does no work";
    EXPECT_EQ(result.totalShots(), 0u);
}

TEST(Engine, SweepCancelMidRunReturnsCompletedPrefix)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1e-3, 2e-3, 3e-3, 4e-3};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 4000;
    sweep.seed = 5;
    sweep.ler.threads = 1;
    api::SweepResult oracle = engine.run(sweep);

    std::atomic<bool> cancel{false};
    sweep.cancel = &cancel;
    std::thread flipper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        cancel.store(true);
    });
    api::SweepResult truncated = engine.run(sweep);
    flipper.join();

    // Whatever prefix completed must match the uninterrupted run point
    // for point — cancellation truncates, it never perturbs.
    ASSERT_LE(truncated.points.size(), oracle.points.size());
    for (std::size_t i = 0; i < truncated.points.size(); ++i) {
        EXPECT_EQ(truncated.points[i].p, oracle.points[i].p);
        EXPECT_EQ(truncated.points[i].memory.z.shots,
                  oracle.points[i].memory.z.shots);
        EXPECT_EQ(truncated.points[i].memory.z.failures,
                  oracle.points[i].memory.z.failures);
        EXPECT_EQ(truncated.points[i].memory.x.shots,
                  oracle.points[i].memory.x.shots);
        EXPECT_EQ(truncated.points[i].memory.x.failures,
                  oracle.points[i].memory.x.failures);
    }
}

TEST(Engine, SweepCancelWithSprtKeepsContiguousChunkPrefix)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1.6e-2};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 8000;
    sweep.seed = 29;
    sweep.ler.threads = 1;
    sweep.sprt.enabled = true;
    sweep.sprt.decisionLer = 0.02;
    sweep.sprt.chunkShots = 512;
    api::SweepResult oracle = engine.run(sweep);

    std::atomic<bool> cancel{false};
    sweep.cancel = &cancel;
    std::thread flipper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        cancel.store(true);
    });
    api::SweepResult truncated = engine.run(sweep);
    flipper.join();

    // An in-progress SPRT point keeps a contiguous chunk prefix: its
    // accounted shots are a prefix of the oracle's shot count.
    for (const api::SweepPointResult &pt : truncated.points) {
        EXPECT_LE(pt.memory.z.shots, oracle.points[0].memory.z.shots);
        EXPECT_LE(pt.memory.x.shots, oracle.points[0].memory.x.shots);
        EXPECT_LE(pt.memory.z.failures, oracle.points[0].memory.z.failures);
        EXPECT_LE(pt.memory.x.failures, oracle.points[0].memory.x.failures);
    }
}

TEST(Engine, SubmitReturnsSameResultAsRun)
{
    api::Engine engine;
    api::LerResult sync = engine.run(d3Request(1));
    std::future<api::LerResult> f1 = engine.submit(d3Request(1));
    std::future<api::LerResult> f2 = engine.submit(d3Request(2));
    api::LerResult r1 = f1.get();
    api::LerResult r2 = f2.get();
    EXPECT_EQ(r1.memory.z.failures, sync.memory.z.failures);
    EXPECT_EQ(r1.memory.x.failures, sync.memory.x.failures);
    EXPECT_EQ(r2.memory.z.failures, sync.memory.z.failures);
    EXPECT_EQ(r2.memory.x.failures, sync.memory.x.failures);
}

// --- SPRT -------------------------------------------------------------------

TEST(Sprt, InvalidOptionsThrow)
{
    api::SprtOptions opts;
    opts.decisionLer = 0.02;
    opts.margin = 1.0;
    EXPECT_THROW(api::SprtTest{opts}, std::invalid_argument);
    opts.margin = 2.0;
    opts.decisionLer = 0.0;
    EXPECT_THROW(api::SprtTest{opts}, std::invalid_argument);
    opts.decisionLer = 0.02;
    opts.alpha = 0.0;
    EXPECT_THROW(api::SprtTest{opts}, std::invalid_argument);
}

TEST(Sprt, DecidesObviousRates)
{
    api::SprtOptions opts;
    opts.decisionLer = 0.02;
    opts.minShots = 100;
    api::SprtTest test(opts);
    // 30% failures over 2000 trials: far above the 4% upper hypothesis.
    EXPECT_EQ(test.evaluate(2000, 600), api::SprtDecision::Above);
    // Zero failures over 2000 trials: far below the 1% lower hypothesis.
    EXPECT_EQ(test.evaluate(2000, 0), api::SprtDecision::Below);
    // Right at the threshold: still inside the indifference zone.
    EXPECT_EQ(test.evaluate(2000, 40), api::SprtDecision::Undecided);
    // Before minShots nothing is decided.
    EXPECT_EQ(test.evaluate(50, 0), api::SprtDecision::Undecided);
}

TEST(Sprt, FixedDecisionRule)
{
    api::SprtOptions opts;
    opts.decisionLer = 0.02;
    EXPECT_EQ(api::SprtTest::fixedDecision(0.5, opts),
              api::SprtDecision::Above);
    EXPECT_EQ(api::SprtTest::fixedDecision(0.001, opts),
              api::SprtDecision::Below);
    opts.decisionLer = 0.0;
    EXPECT_EQ(api::SprtTest::fixedDecision(0.5, opts),
              api::SprtDecision::None);
}

TEST(Sprt, AdaptiveSweepSameDecisionsFewerShots)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    // LER(d=3 N-Z) is ~1e-3 at p=1e-3 and ~0.2 at p=1.6e-2 — both far
    // outside the [0.01, 0.04] indifference zone of the 0.02 threshold.
    sweep.ps = {1e-3, 1.6e-2};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 20000;
    sweep.seed = 13;
    sweep.ler.threads = 1;
    sweep.sprt.decisionLer = 0.02;

    sweep.sprt.enabled = false;
    api::SweepResult fixed = engine.run(sweep);
    sweep.sprt.enabled = true;
    api::SweepResult adaptive = engine.run(sweep);

    ASSERT_EQ(fixed.points.size(), adaptive.points.size());
    for (std::size_t i = 0; i < fixed.points.size(); ++i) {
        EXPECT_NE(fixed.points[i].decision, api::SprtDecision::None);
        EXPECT_EQ(fixed.points[i].decision, adaptive.points[i].decision)
            << "p=" << fixed.points[i].p;
    }
    EXPECT_EQ(fixed.points[0].decision, api::SprtDecision::Below);
    EXPECT_EQ(fixed.points[1].decision, api::SprtDecision::Above);
    EXPECT_LT(adaptive.totalShots(), fixed.totalShots())
        << "SPRT must save shots on well-separated points";
}

TEST(Sprt, AdaptiveSweepDeterministicAcrossThreadCounts)
{
    api::Engine engine;
    api::SweepRequest sweep(d3Schedule());
    sweep.rounds = 3;
    sweep.ps = {1.6e-2};
    sweep.decoder = "union_find";
    sweep.shotsPerPoint = 8000;
    sweep.seed = 29;
    sweep.sprt.enabled = true;
    sweep.sprt.decisionLer = 0.02;

    sweep.ler.threads = 1;
    api::SweepResult one = engine.run(sweep);
    for (std::size_t threads : {2u, 3u}) {
        sweep.ler.threads = threads;
        api::SweepResult many = engine.run(sweep);
        EXPECT_EQ(many.points[0].memory.z.failures,
                  one.points[0].memory.z.failures);
        EXPECT_EQ(many.points[0].memory.x.failures,
                  one.points[0].memory.x.failures);
        EXPECT_EQ(many.totalShots(), one.totalShots());
        EXPECT_EQ(many.points[0].decision, one.points[0].decision);
    }
}

// --- config -----------------------------------------------------------------

TEST(Config, EnvOverridesDefaults)
{
    ::setenv("PROPHUNT_SHOTS", "123", 1);
    ::setenv("PROPHUNT_THREADS", "2", 1);
    ::setenv("PROPHUNT_MAX_FAILURES", "7", 1);
    api::Config cfg = api::Config::fromEnv();
    ::unsetenv("PROPHUNT_SHOTS");
    ::unsetenv("PROPHUNT_THREADS");
    ::unsetenv("PROPHUNT_MAX_FAILURES");
    EXPECT_EQ(cfg.shots, 123u);
    EXPECT_EQ(cfg.threads, 2u);
    EXPECT_EQ(cfg.maxFailures, 7u);
    EXPECT_EQ(cfg.lerOptions().threads, 2u);
    EXPECT_EQ(cfg.lerOptions().maxFailures, 7u);
    EXPECT_EQ(cfg.propHuntOptions(9).seed, 9u);
    EXPECT_EQ(cfg.propHuntOptions(9).ler.threads, 2u);
}

TEST(Config, DefaultThreadsMeanHardwareConcurrency)
{
    api::Config cfg;
    EXPECT_EQ(cfg.threads, 0u);
    EXPECT_EQ(decoder::LerOptions{}.threads, 0u)
        << "0 = hardware concurrency is the single default";
}

TEST(Config, ApplyArgsStripsRecognizedFlags)
{
    const char *argv_in[] = {"prog",      "--threads", "3",  "keep",
                             "--shots",   "999",       "--max-failures",
                             "11",        "tail"};
    char *argv[9];
    for (int i = 0; i < 9; ++i) {
        argv[i] = const_cast<char *>(argv_in[i]);
    }
    int argc = 9;
    api::Config cfg;
    cfg.applyArgs(argc, argv);
    EXPECT_EQ(cfg.threads, 3u);
    EXPECT_EQ(cfg.shots, 999u);
    EXPECT_EQ(cfg.maxFailures, 11u);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "keep");
    EXPECT_STREQ(argv[2], "tail");
}
