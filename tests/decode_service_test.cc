/**
 * @file
 * Concurrency and determinism contracts of api::DecodeService.
 *
 * The service promise under test: measure() returns exactly what a
 * serial decoder::measureDemLer run returns for the same (dem, decoder,
 * shots, seed, ler) — for every thread count, every arrival order of
 * concurrent requests, and every coalescing / tally-reuse / lane-group
 * cache state. On top of that, the suite pins the service-only
 * behaviors: deterministic coalescing detection (via a gate decoder
 * that holds one request in flight until a second is admitted),
 * bit-exact cross-request shot reuse including the partial-trailing-
 * shard guard, FIFO eviction of tally keys and lane groups, warm-clone
 * checkout accounting, cancellation prefix semantics, and the
 * WorkerPool primitive itself (full coverage, nesting, exception
 * propagation, stop flags).
 *
 * Everything asserted here is thread-count and wall-clock invariant;
 * PackedDecodeStats::osdUs (wall time) is deliberately never compared.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/decode_service.h"
#include "circuit/coloration.h"
#include "code/surface.h"
#include "decoder/decoder.h"
#include "decoder/logical_error.h"
#include "decoder/registry.h"
#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/noise_model.h"
#include "sim/parallel_sampler.h"

using namespace prophunt;

namespace {

/** One decode problem: a d=3 surface memory DEM plus a prototype. The
 * shared_ptr to the model doubles as the job's keepAlive identity. */
struct Model
{
    circuit::SmCircuit circuit;
    sim::Dem dem;
    std::unique_ptr<decoder::Decoder> prototype;
};

std::shared_ptr<Model>
makeModel(const decoder::DecoderSpec &spec = "union_find", double p = 3e-3)
{
    auto cp = std::make_shared<const code::CssCode>(code::SurfaceCode(3).code());
    auto m = std::make_shared<Model>();
    m->circuit = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                             3, circuit::MemoryBasis::Z);
    m->dem = sim::buildDem(m->circuit, sim::NoiseModel::uniform(p));
    m->prototype = decoder::Registry::make(spec, m->dem, m->circuit);
    return m;
}

api::DecodeJob
jobFor(const std::shared_ptr<Model> &m, std::string key, std::size_t shots,
       uint64_t seed, std::size_t shard_shots, std::size_t threads = 1)
{
    api::DecodeJob job;
    job.key = std::move(key);
    job.dem = &m->dem;
    job.prototype = m->prototype.get();
    job.keepAlive = m;
    job.shots = shots;
    job.seed = seed;
    job.ler.shardShots = shard_shots;
    job.ler.threads = threads;
    return job;
}

/** The contract's right-hand side: a fresh clone, serial measureDemLer. */
decoder::LerResult
serialRef(const Model &m, std::size_t shots, uint64_t seed,
          std::size_t shard_shots, std::size_t max_failures = 0)
{
    auto dec = m.prototype->clone();
    decoder::LerOptions opts;
    opts.threads = 1;
    opts.shardShots = shard_shots;
    opts.maxFailures = max_failures;
    return decoder::measureDemLer(m.dem, *dec, shots, seed, opts);
}

/** Every field of LerResult except the wall-clock osdUs. */
void
expectSameResult(const decoder::LerResult &got, const decoder::LerResult &want)
{
    EXPECT_EQ(got.shots, want.shots);
    EXPECT_EQ(got.failures, want.failures);
    EXPECT_EQ(got.earlyStopped, want.earlyStopped);
    EXPECT_EQ(got.packed.packedShots, want.packed.packedShots);
    EXPECT_EQ(got.packed.adapterShots, want.packed.adapterShots);
    EXPECT_EQ(got.packed.laneSlotsBusy, want.packed.laneSlotsBusy);
    EXPECT_EQ(got.packed.laneSlotsTotal, want.packed.laneSlotsTotal);
    EXPECT_EQ(got.packed.osdShots, want.packed.osdShots);
}

/**
 * A decoder whose decodePacked blocks until @p need shards (across all
 * clones sharing the gate) have entered decoding. Holding the first
 * request's only shard in flight until the second request's shard
 * arrives makes the coalescing window deterministic: the second
 * admission is guaranteed to happen while the first is still active.
 */
struct GateState
{
    std::atomic<int> entered{0};
    int need = 2;
};

class GateDecoder : public decoder::Decoder
{
  public:
    explicit GateDecoder(GateState *gate) : gate_(gate) {}

    uint64_t
    decode(const std::vector<uint32_t> &) override
    {
        return 0;
    }

    void
    decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                 decoder::PackedDecodeStats *stats) override
    {
        gate_->entered.fetch_add(1, std::memory_order_acq_rel);
        while (gate_->entered.load(std::memory_order_acquire) < gate_->need) {
            std::this_thread::yield();
        }
        for (std::size_t s = 0; s < frames.shots; ++s) {
            obs_out[s] = 0;
        }
        if (stats != nullptr) {
            stats->packedShots += frames.shots;
        }
    }

    std::unique_ptr<decoder::Decoder>
    clone() const override
    {
        return std::make_unique<GateDecoder>(gate_);
    }

  private:
    GateState *gate_;
};

/**
 * Wraps a real decoder and raises @p flag after @p limit decodePacked
 * calls across all clones — a deterministic mid-queue cancellation.
 */
class CancelAfterDecoder : public decoder::Decoder
{
  public:
    CancelAfterDecoder(const decoder::Decoder &inner,
                       std::atomic<bool> *flag,
                       std::shared_ptr<std::atomic<int>> calls, int limit)
        : inner_(inner.clone()), flag_(flag), calls_(std::move(calls)),
          limit_(limit)
    {
    }

    uint64_t
    decode(const std::vector<uint32_t> &flipped) override
    {
        return inner_->decode(flipped);
    }

    void
    decodePacked(const sim::FrameView &frames, uint64_t *obs_out,
                 decoder::PackedDecodeStats *stats) override
    {
        inner_->decodePacked(frames, obs_out, stats);
        if (calls_->fetch_add(1, std::memory_order_acq_rel) + 1 == limit_) {
            flag_->store(true, std::memory_order_release);
        }
    }

    std::unique_ptr<decoder::Decoder>
    clone() const override
    {
        return std::make_unique<CancelAfterDecoder>(*inner_, flag_, calls_,
                                                    limit_);
    }

  private:
    std::unique_ptr<decoder::Decoder> inner_;
    std::atomic<bool> *flag_;
    std::shared_ptr<std::atomic<int>> calls_;
    int limit_;
};

} // namespace

// --- WorkerPool primitive ---------------------------------------------------

TEST(WorkerPool, RunsEveryIndexExactlyOnceWithinSlotBound)
{
    sim::WorkerPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    std::atomic<std::size_t> badSlot{0};
    pool.run(n, 4, [&](std::size_t i, std::size_t slot) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        if (slot >= 4) {
            badSlot.fetch_add(1, std::memory_order_relaxed);
        }
    });
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    EXPECT_EQ(badSlot.load(), 0u);
}

TEST(WorkerPool, NestedRunsAlwaysProgress)
{
    // Every run's caller can drain it alone, so runs nested inside pool
    // workers never deadlock even when all workers are busy.
    sim::WorkerPool pool(2);
    std::atomic<std::size_t> inner{0};
    pool.run(4, 3, [&](std::size_t, std::size_t) {
        pool.run(8, 2, [&](std::size_t, std::size_t) {
            inner.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner.load(), 32u);
}

TEST(WorkerPool, ZeroThreadPoolDegradesToSerialLoop)
{
    sim::WorkerPool pool(0);
    std::vector<std::size_t> order;
    pool.run(5, 4, [&](std::size_t i, std::size_t slot) {
        EXPECT_EQ(slot, 0u);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(order[i], i);
    }
}

TEST(WorkerPool, ExceptionsPropagateToCaller)
{
    sim::WorkerPool pool(2);
    std::atomic<std::size_t> done{0};
    EXPECT_THROW(pool.run(100, 3,
                          [&](std::size_t i, std::size_t) {
                              if (i == 5) {
                                  throw std::runtime_error("boom");
                              }
                              done.fetch_add(1, std::memory_order_relaxed);
                          }),
                 std::runtime_error);
    EXPECT_LT(done.load(), 100u);
}

TEST(WorkerPool, PresetStopFlagClaimsNothing)
{
    sim::WorkerPool pool(2);
    std::atomic<bool> stop{true};
    std::atomic<std::size_t> ran{0};
    pool.run(64, 3,
             [&](std::size_t, std::size_t) {
                 ran.fetch_add(1, std::memory_order_relaxed);
             },
             &stop);
    EXPECT_EQ(ran.load(), 0u);
}

// --- serial equivalence -----------------------------------------------------

TEST(DecodeService, MatchesSerialReferenceAcrossThreadCounts)
{
    auto m = makeModel();
    decoder::LerResult ref = serialRef(*m, 4096, 99, 256);
    api::DecodeServiceOptions opts;
    opts.threads = 2; // dedicated pool: real workers even on 1-CPU boxes
    for (std::size_t threads : {1u, 2u, 8u}) {
        api::DecodeService service(opts);
        api::DecodeOutcome out =
            service.measure(jobFor(m, "d3", 4096, 99, 256, threads));
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectSameResult(out.result, ref);
        EXPECT_EQ(out.reusedShots, 0u);
        EXPECT_FALSE(out.coalesced);
    }
}

TEST(DecodeService, BpOsdLaneDecoderMatchesSerialReference)
{
    auto m = makeModel("bp_osd", 2e-3);
    decoder::LerResult ref = serialRef(*m, 1536, 5, 256);
    api::DecodeServiceOptions opts;
    opts.threads = 2;
    api::DecodeService service(opts);
    for (std::size_t threads : {1u, 3u}) {
        api::DecodeOutcome out =
            service.measure(jobFor(m, "bp", 1536, 5, 256, threads));
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectSameResult(out.result, ref);
    }
}

TEST(DecodeService, MaxFailuresEarlyStopMatchesSerial)
{
    auto m = makeModel("union_find", 1e-2);
    decoder::LerResult ref = serialRef(*m, 4096, 13, 128, 5);
    api::DecodeService service;
    for (std::size_t threads : {1u, 4u}) {
        api::DecodeJob job = jobFor(m, "hot", 4096, 13, 128, threads);
        job.ler.maxFailures = 5;
        api::DecodeOutcome out = service.measure(job);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectSameResult(out.result, ref);
    }
    EXPECT_TRUE(ref.earlyStopped)
        << "test needs a regime where early stopping actually triggers";
}

// --- concurrent submission --------------------------------------------------

TEST(DecodeService, ConcurrentIdenticalRequestsAllBitIdentical)
{
    auto m = makeModel();
    decoder::LerResult ref = serialRef(*m, 4096, 21, 256);
    api::DecodeServiceOptions opts;
    opts.threads = 2;
    api::DecodeService service(opts);

    const std::size_t clients = 8;
    std::vector<api::DecodeOutcome> outcomes(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            // Deterministic pseudo-jitter: scatter the arrival order.
            std::this_thread::sleep_for(
                std::chrono::microseconds((c * 97) % 500));
            api::DecodeJob job = jobFor(m, "same", 4096, 21, 256, 0);
            outcomes[c] = service.measure(job);
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    for (std::size_t c = 0; c < clients; ++c) {
        SCOPED_TRACE("client=" + std::to_string(c));
        expectSameResult(outcomes[c].result, ref);
    }
    EXPECT_EQ(service.stats().requests, clients);
}

TEST(DecodeService, ConcurrentDistinctRequestsAllBitIdentical)
{
    auto a = makeModel("union_find", 3e-3);
    auto b = makeModel("union_find", 5e-3);
    api::DecodeServiceOptions opts;
    opts.threads = 2;
    api::DecodeService service(opts);

    const std::size_t clients = 8;
    std::vector<api::DecodeOutcome> outcomes(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::this_thread::sleep_for(
                std::chrono::microseconds((c * 131) % 400));
            const auto &model = (c % 2 == 0) ? a : b;
            const char *key = (c % 2 == 0) ? "A" : "B";
            api::DecodeJob job =
                jobFor(model, key, 2048, 11 + c, 256, 0);
            outcomes[c] = service.measure(job);
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    for (std::size_t c = 0; c < clients; ++c) {
        const auto &model = (c % 2 == 0) ? a : b;
        decoder::LerResult ref = serialRef(*model, 2048, 11 + c, 256);
        SCOPED_TRACE("client=" + std::to_string(c));
        expectSameResult(outcomes[c].result, ref);
    }
    EXPECT_EQ(service.stats().requests, clients);
}

TEST(DecodeService, CoalescingDetectedDeterministically)
{
    // The gate holds request A's single shard in flight until request
    // B's shard starts decoding — B must therefore have been admitted
    // while A was active (or vice versa), so exactly one of the two is
    // counted as coalesced, regardless of scheduling.
    auto m = makeModel();
    GateState gate;
    GateDecoder prototype(&gate);
    api::DecodeService service;

    auto gatedJob = [&] {
        api::DecodeJob job = jobFor(m, "gated", 256, 3, 256, 1);
        job.prototype = &prototype;
        job.record = false;
        return job;
    };
    api::DecodeOutcome oa;
    api::DecodeOutcome ob;
    std::thread ta([&] { oa = service.measure(gatedJob()); });
    std::thread tb([&] { ob = service.measure(gatedJob()); });
    ta.join();
    tb.join();

    EXPECT_EQ(gate.entered.load(), 2);
    EXPECT_EQ(oa.result.shots, 256u);
    EXPECT_EQ(ob.result.shots, 256u);
    EXPECT_EQ((oa.coalesced ? 1 : 0) + (ob.coalesced ? 1 : 0), 1);
    EXPECT_EQ(service.stats().coalescedRequests, 1u);
}

TEST(DecodeService, CoalesceOffNeverCoalescesAndKeepsNoLaneGroups)
{
    auto m = makeModel();
    GateState gate;
    GateDecoder prototype(&gate);
    api::DecodeServiceOptions opts;
    opts.coalesce = false;
    api::DecodeService service(opts);

    auto gatedJob = [&] {
        api::DecodeJob job = jobFor(m, "gated", 256, 3, 256, 1);
        job.prototype = &prototype;
        job.record = false;
        return job;
    };
    api::DecodeOutcome oa;
    api::DecodeOutcome ob;
    std::thread ta([&] { oa = service.measure(gatedJob()); });
    std::thread tb([&] { ob = service.measure(gatedJob()); });
    ta.join();
    tb.join();

    EXPECT_EQ(oa.result.shots, 256u);
    EXPECT_EQ(ob.result.shots, 256u);
    EXPECT_FALSE(oa.coalesced);
    EXPECT_FALSE(ob.coalesced);
    api::DecodeServiceStats stats = service.stats();
    EXPECT_EQ(stats.coalescedRequests, 0u);
    EXPECT_EQ(stats.laneGroups, 0u)
        << "coalescing off must not retain shared clone groups";
}

// --- cross-request shot reuse -----------------------------------------------

TEST(DecodeService, TallyReuseSatisfiesIdenticalRerunWithoutDecoding)
{
    auto m = makeModel();
    api::DecodeService service;
    api::DecodeJob job = jobFor(m, "d3", 2048, 7, 256);

    api::DecodeOutcome first = service.measure(job);
    EXPECT_EQ(first.reusedShots, 0u);
    api::DecodeServiceStats after1 = service.stats();
    EXPECT_EQ(after1.decodedShards, 8u);
    EXPECT_EQ(after1.tallyKeys, 1u);

    api::DecodeOutcome second = service.measure(job);
    expectSameResult(second.result, first.result);
    EXPECT_EQ(second.reusedShots, 2048u);
    api::DecodeServiceStats after2 = service.stats();
    EXPECT_EQ(after2.decodedShards, 8u)
        << "a fully reused rerun must not decode any shard";
    EXPECT_EQ(after2.reusedShots, 2048u);
}

TEST(DecodeService, TallyReuseExtendsToLargerBudget)
{
    auto m = makeModel();
    api::DecodeService service;
    service.measure(jobFor(m, "d3", 1024, 7, 256));
    api::DecodeOutcome out = service.measure(jobFor(m, "d3", 2048, 7, 256));
    expectSameResult(out.result, serialRef(*m, 2048, 7, 256));
    EXPECT_EQ(out.reusedShots, 1024u)
        << "the recorded 4-shard prefix satisfies half the larger budget";
}

TEST(DecodeService, PartialTrailingShardIsNeverReused)
{
    // A 640-shot run at 256-shot shards records shards of 256/256/128.
    // A later 1024-shot run may reuse only the two full shards: the
    // first 128 shots of a 256-shot shard sample are NOT the 128-shot
    // sample of the same seed, so size-mismatched tallies must re-decode.
    auto m = makeModel();
    api::DecodeService service;
    service.measure(jobFor(m, "d3", 640, 7, 256));
    api::DecodeOutcome out = service.measure(jobFor(m, "d3", 1024, 7, 256));
    expectSameResult(out.result, serialRef(*m, 1024, 7, 256));
    EXPECT_EQ(out.reusedShots, 512u);
}

TEST(DecodeService, DifferentSeedsAndShardSizesDoNotShareTallies)
{
    auto m = makeModel();
    api::DecodeService service;
    service.measure(jobFor(m, "d3", 1024, 7, 256));
    api::DecodeOutcome seed = service.measure(jobFor(m, "d3", 1024, 8, 256));
    EXPECT_EQ(seed.reusedShots, 0u);
    expectSameResult(seed.result, serialRef(*m, 1024, 8, 256));
    api::DecodeOutcome width = service.measure(jobFor(m, "d3", 1024, 7, 128));
    EXPECT_EQ(width.reusedShots, 0u);
    expectSameResult(width.result, serialRef(*m, 1024, 7, 128));
}

TEST(DecodeService, ReuseOffDecodesEveryTime)
{
    auto m = makeModel();
    api::DecodeServiceOptions opts;
    opts.reuseShots = false;
    api::DecodeService service(opts);
    api::DecodeJob job = jobFor(m, "d3", 1024, 7, 256);
    api::DecodeOutcome first = service.measure(job);
    api::DecodeOutcome second = service.measure(job);
    expectSameResult(second.result, first.result);
    EXPECT_EQ(second.reusedShots, 0u);
    api::DecodeServiceStats stats = service.stats();
    EXPECT_EQ(stats.decodedShards, 8u);
    EXPECT_EQ(stats.reusedShots, 0u);
    EXPECT_EQ(stats.tallyKeys, 0u);
}

TEST(DecodeService, RecordOffLeavesNoTallies)
{
    auto m = makeModel();
    api::DecodeService service;
    api::DecodeJob job = jobFor(m, "d3", 1024, 7, 256);
    job.record = false;
    service.measure(job);
    EXPECT_EQ(service.stats().tallyKeys, 0u);
    job.record = true;
    api::DecodeOutcome out = service.measure(job);
    EXPECT_EQ(out.reusedShots, 0u)
        << "an unrecorded run must not feed later reuse";
}

TEST(DecodeService, FifoTallyEvictionDropsOldestKey)
{
    auto m = makeModel();
    api::DecodeServiceOptions tight;
    tight.maxTallyKeys = 1;
    api::DecodeService small(tight);
    small.measure(jobFor(m, "A", 512, 7, 256));
    small.measure(jobFor(m, "B", 512, 7, 256)); // evicts A's stream
    EXPECT_EQ(small.stats().tallyKeys, 1u);
    api::DecodeOutcome again = small.measure(jobFor(m, "A", 512, 7, 256));
    EXPECT_EQ(again.reusedShots, 0u);

    api::DecodeServiceOptions roomy;
    roomy.maxTallyKeys = 2;
    api::DecodeService big(roomy);
    big.measure(jobFor(m, "A", 512, 7, 256));
    big.measure(jobFor(m, "B", 512, 7, 256));
    api::DecodeOutcome kept = big.measure(jobFor(m, "A", 512, 7, 256));
    EXPECT_EQ(kept.reusedShots, 512u);
}

TEST(DecodeService, FifoLaneGroupEvictionBoundsWarmClones)
{
    auto m = makeModel();
    api::DecodeServiceOptions opts;
    opts.maxLaneGroups = 1;
    opts.reuseShots = false;
    api::DecodeService service(opts);
    service.measure(jobFor(m, "A", 256, 7, 256));
    service.measure(jobFor(m, "B", 256, 7, 256));
    EXPECT_EQ(service.stats().laneGroups, 1u);
}

TEST(DecodeService, WarmClonesCheckedOutAcrossRequests)
{
    // Single-slot runs make the checkout ledger exact: the first shard
    // of the first request clones the prototype, every later shard and
    // every later request reuses that one warm clone.
    auto m = makeModel();
    api::DecodeServiceOptions opts;
    opts.reuseShots = false; // force the second request to decode
    api::DecodeService service(opts);
    api::DecodeJob job = jobFor(m, "d3", 2048, 7, 256, 1);
    service.measure(job);
    api::DecodeServiceStats after1 = service.stats();
    EXPECT_EQ(after1.cloneMisses, 1u);
    EXPECT_EQ(after1.cloneHits, 7u);
    service.measure(job);
    api::DecodeServiceStats after2 = service.stats();
    EXPECT_EQ(after2.cloneMisses, 1u)
        << "the second request must find the first request's clone warm";
    EXPECT_EQ(after2.cloneHits, 15u);
}

// --- edge cases: zero shots, cancellation -----------------------------------

TEST(DecodeService, ZeroShotJobIsEmptyAndUntracked)
{
    auto m = makeModel();
    api::DecodeService service;
    api::DecodeOutcome out = service.measure(jobFor(m, "d3", 0, 7, 256));
    EXPECT_EQ(out.result.shots, 0u);
    EXPECT_EQ(out.result.failures, 0u);
    EXPECT_FALSE(out.result.earlyStopped);
    EXPECT_EQ(out.reusedShots, 0u);
    EXPECT_FALSE(out.coalesced);
    api::DecodeServiceStats stats = service.stats();
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_EQ(stats.decodedShards, 0u);
    EXPECT_EQ(stats.tallyKeys, 0u);
    EXPECT_EQ(stats.laneGroups, 0u);
}

TEST(DecodeService, CancelBeforeStartReturnsEmptyResult)
{
    auto m = makeModel();
    api::DecodeService service;
    std::atomic<bool> cancel{true};
    api::DecodeJob job = jobFor(m, "d3", 1024, 7, 256);
    job.cancel = &cancel;
    api::DecodeOutcome out = service.measure(job);
    EXPECT_EQ(out.result.shots, 0u);
    EXPECT_EQ(out.result.failures, 0u);
    EXPECT_EQ(service.stats().decodedShards, 0u);
}

TEST(DecodeService, CancelMidQueueTruncatesToValidShardPrefix)
{
    // The wrapper raises the cancel flag after the second shard decode;
    // with one slot the run then stops deterministically after shards
    // 0 and 1 — and the truncated result must equal a serial 512-shot
    // run of the same stream (every prefix is a valid smaller run).
    auto m = makeModel();
    std::atomic<bool> cancel{false};
    auto calls = std::make_shared<std::atomic<int>>(0);
    CancelAfterDecoder prototype(*m->prototype, &cancel, calls, 2);
    api::DecodeService service;
    api::DecodeJob job = jobFor(m, "d3", 2048, 7, 256, 1);
    job.prototype = &prototype;
    job.cancel = &cancel;
    api::DecodeOutcome out = service.measure(job);
    EXPECT_EQ(out.result.shots, 512u);
    expectSameResult(out.result, serialRef(*m, 512, 7, 256));
    EXPECT_EQ(service.stats().decodedShards, 2u);
}
