/**
 * @file
 * Tests for the checkpointable/shardable sweep layer
 * (api/sweep_checkpoint.h): serialization round-trips, atomic
 * persistence, corrupt-input rejection, fingerprint binding, bit-exact
 * resume at every interruption offset, and shard-merge equivalence with
 * the serial oracle.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/sweep_checkpoint.h"
#include "circuit/surface_schedules.h"
#include "code/surface.h"

using namespace prophunt;

namespace {

circuit::SmSchedule
d3Schedule()
{
    code::SurfaceCode s(3);
    return circuit::nzSchedule(s);
}

/** Small SPRT sweep whose grid has several chunks per point. */
api::SweepRequest
sprtRequest()
{
    api::SweepRequest req(d3Schedule());
    req.rounds = 3;
    req.ps = {1e-3, 1.6e-2};
    req.decoder = "union_find";
    req.shotsPerPoint = 2048;
    req.seed = 13;
    req.ler.threads = 1;
    req.sprt.enabled = true;
    req.sprt.decisionLer = 0.02;
    req.sprt.chunkShots = 256;
    req.sprt.minShots = 128;
    return req;
}

/** A filled-in checkpoint with a mix of done and pending cells. */
api::SweepCheckpoint
sampleCheckpoint()
{
    api::SweepCheckpoint cp = api::makeSweepCheckpoint(sprtRequest());
    api::SweepChunkTally t;
    t.done = true;
    t.zShots = 256;
    t.zFailures = 1;
    t.xShots = 256;
    t.xFailures = 2;
    cp.points[0].chunks[0] = t;
    t.zFailures = 0;
    t.zEarlyStopped = true;
    cp.points[1].chunks[3] = t;
    return cp;
}

void
expectEqualCheckpoints(const api::SweepCheckpoint &a,
                       const api::SweepCheckpoint &b)
{
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.shardIndex, b.shardIndex);
    EXPECT_EQ(a.shardCount, b.shardCount);
    EXPECT_EQ(a.shotsPerPoint, b.shotsPerPoint);
    EXPECT_EQ(a.chunkShots, b.chunkShots);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.sprt.enabled, b.sprt.enabled);
    EXPECT_EQ(a.sprt.decisionLer, b.sprt.decisionLer);
    EXPECT_EQ(a.sprt.margin, b.sprt.margin);
    EXPECT_EQ(a.sprt.alpha, b.sprt.alpha);
    EXPECT_EQ(a.sprt.beta, b.sprt.beta);
    EXPECT_EQ(a.sprt.chunkShots, b.sprt.chunkShots);
    EXPECT_EQ(a.sprt.minShots, b.sprt.minShots);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].p, b.points[i].p);
        ASSERT_EQ(a.points[i].chunks.size(), b.points[i].chunks.size());
        for (std::size_t c = 0; c < a.points[i].chunks.size(); ++c) {
            EXPECT_TRUE(a.points[i].chunks[c] == b.points[i].chunks[c])
                << "point " << i << " chunk " << c;
        }
    }
}

void
expectEqualResults(const api::SweepResult &a, const api::SweepResult &b)
{
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].memory.z.shots, b.points[i].memory.z.shots)
            << "point " << i;
        EXPECT_EQ(a.points[i].memory.z.failures,
                  b.points[i].memory.z.failures)
            << "point " << i;
        EXPECT_EQ(a.points[i].memory.x.shots, b.points[i].memory.x.shots)
            << "point " << i;
        EXPECT_EQ(a.points[i].memory.x.failures,
                  b.points[i].memory.x.failures)
            << "point " << i;
        EXPECT_EQ(a.points[i].decision, b.points[i].decision)
            << "point " << i;
    }
}

/** Unique-ish per-test scratch file, removed on destruction. */
struct ScratchFile
{
    std::string path;
    explicit ScratchFile(const std::string &name)
        : path("sweep_ckpt_test_" + name + ".json")
    {
        std::remove(path.c_str());
    }
    ~ScratchFile()
    {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
};

bool
fileExists(const std::string &path)
{
    std::ifstream in(path);
    return in.good();
}

} // namespace

// --- grid -------------------------------------------------------------------

TEST(SweepGrid, SprtGridShape)
{
    api::SweepGrid grid = api::sweepGridFor(sprtRequest());
    EXPECT_EQ(grid.numPoints, 2u);
    EXPECT_EQ(grid.chunkShots, 256u);
    EXPECT_TRUE(grid.sprt);
    EXPECT_EQ(grid.chunksPerPoint(), 8u);
    EXPECT_EQ(grid.totalCells(), 16u);
    EXPECT_EQ(grid.chunkSize(7), 256u);
    EXPECT_EQ(grid.cellIndex(1, 3), 11u);
}

TEST(SweepGrid, FixedBudgetIsOneChunkPerPoint)
{
    api::SweepRequest req = sprtRequest();
    req.sprt.enabled = false;
    api::SweepGrid grid = api::sweepGridFor(req);
    EXPECT_FALSE(grid.sprt);
    EXPECT_EQ(grid.chunksPerPoint(), 1u);
    EXPECT_EQ(grid.chunkShots, req.shotsPerPoint);
}

TEST(SweepGrid, ChunkShotsZeroClampsToOne)
{
    api::SweepRequest req = sprtRequest();
    req.sprt.chunkShots = 0;
    api::SweepGrid grid = api::sweepGridFor(req);
    EXPECT_EQ(grid.chunkShots, 1u);
    EXPECT_EQ(grid.chunksPerPoint(), req.shotsPerPoint);
}

TEST(SweepGrid, ShardOwnershipPartitionsCells)
{
    api::SweepGrid grid = api::sweepGridFor(sprtRequest());
    for (std::size_t count = 1; count <= 4; ++count) {
        for (std::size_t p = 0; p < grid.numPoints; ++p) {
            for (std::size_t c = 0; c < grid.chunksPerPoint(); ++c) {
                std::size_t owners = 0;
                for (std::size_t i = 0; i < count; ++i) {
                    owners += grid.ownsCell(i, count, p, c) ? 1 : 0;
                }
                EXPECT_EQ(owners, 1u)
                    << "count=" << count << " p=" << p << " c=" << c;
            }
        }
    }
}

// --- serialization ----------------------------------------------------------

TEST(SweepCheckpoint, JsonRoundTripIsExact)
{
    api::SweepCheckpoint cp = sampleCheckpoint();
    api::SweepCheckpoint back = api::SweepCheckpoint::fromJson(cp.toJson());
    expectEqualCheckpoints(cp, back);
}

TEST(SweepCheckpoint, HighBitSeedSurvivesRoundTrip)
{
    // uint64 values above 2^53 corrupt through doubles; the format must
    // not lose them.
    api::SweepRequest req = sprtRequest();
    req.seed = 0xFFFFFFFFFFFFFFFFULL;
    api::SweepCheckpoint cp = api::makeSweepCheckpoint(req);
    api::SweepCheckpoint back = api::SweepCheckpoint::fromJson(cp.toJson());
    EXPECT_EQ(back.seed, 0xFFFFFFFFFFFFFFFFULL);
    EXPECT_EQ(back.fingerprint, cp.fingerprint);
}

TEST(SweepCheckpoint, SaveAtomicLoadRoundTripsAndLeavesNoTemp)
{
    ScratchFile f("save_load");
    api::SweepCheckpoint cp = sampleCheckpoint();
    cp.saveAtomic(f.path);
    EXPECT_TRUE(fileExists(f.path));
    EXPECT_FALSE(fileExists(f.path + ".tmp"))
        << "temp file must be renamed away";
    expectEqualCheckpoints(cp, api::SweepCheckpoint::load(f.path));
}

TEST(SweepCheckpoint, LoadMissingThrowsAndLoadIfExistsReturnsEmpty)
{
    EXPECT_THROW(api::SweepCheckpoint::load("no_such_checkpoint.json"),
                 std::runtime_error);
    EXPECT_FALSE(
        api::SweepCheckpoint::loadIfExists("no_such_checkpoint.json")
            .has_value());
}

TEST(SweepCheckpoint, RejectsCorruptInput)
{
    std::string good = sampleCheckpoint().toJson();

    // Truncation inside the document must throw, never return garbage
    // (good ends "]\n}\n", so -2 cuts the closing brace off).
    for (std::size_t len : {0ul, 1ul, good.size() / 2, good.size() - 2}) {
        EXPECT_THROW(api::SweepCheckpoint::fromJson(good.substr(0, len)),
                     std::runtime_error)
            << "truncated to " << len << " bytes";
    }
    EXPECT_THROW(api::SweepCheckpoint::fromJson("not json at all"),
                 std::runtime_error);
    EXPECT_THROW(api::SweepCheckpoint::fromJson("{}"), std::runtime_error);

    // Wrong format marker and unsupported version are refused.
    std::string wrong_format = good;
    wrong_format.replace(wrong_format.find("prophunt-sweep-checkpoint"),
                         std::string("prophunt-sweep-checkpoint").size(),
                         "prophunt-other-file-format!!");
    EXPECT_THROW(api::SweepCheckpoint::fromJson(wrong_format),
                 std::runtime_error);

    std::string wrong_version = good;
    std::size_t vpos = wrong_version.find("\"version\": 1");
    ASSERT_NE(vpos, std::string::npos);
    wrong_version.replace(vpos, 12, "\"version\": 9");
    EXPECT_THROW(api::SweepCheckpoint::fromJson(wrong_version),
                 std::runtime_error);
}

TEST(SweepCheckpoint, RejectsInconsistentTallies)
{
    // failures > shots cannot come from a real run.
    api::SweepCheckpoint cp = sampleCheckpoint();
    cp.points[0].chunks[0].zFailures = cp.points[0].chunks[0].zShots + 1;
    EXPECT_THROW(api::SweepCheckpoint::fromJson(cp.toJson()),
                 std::runtime_error);
}

TEST(SweepCheckpoint, LoadCorruptFileMentionsPath)
{
    ScratchFile f("corrupt");
    {
        std::ofstream out(f.path);
        out << "{\"format\": \"prophunt-sweep-checkpoint\", truncated";
    }
    try {
        api::SweepCheckpoint::load(f.path);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(f.path), std::string::npos)
            << "error should name the offending file: " << e.what();
    }
}

// --- fingerprint ------------------------------------------------------------

TEST(SweepFingerprint, BindsTallyAffectingFields)
{
    api::SweepRequest base = sprtRequest();
    uint64_t fp = api::sweepFingerprint(base);

    api::SweepRequest changed = base;
    changed.seed = 14;
    EXPECT_NE(api::sweepFingerprint(changed), fp);

    changed = base;
    changed.ps = {1e-3, 1.7e-2};
    EXPECT_NE(api::sweepFingerprint(changed), fp);

    changed = base;
    changed.sprt.decisionLer = 0.03;
    EXPECT_NE(api::sweepFingerprint(changed), fp);

    changed = base;
    changed.shotsPerPoint = 4096;
    EXPECT_NE(api::sweepFingerprint(changed), fp);

    changed = base;
    changed.decoder = "matching";
    EXPECT_NE(api::sweepFingerprint(changed), fp);
}

TEST(SweepFingerprint, IgnoresExecutionOnlyKnobs)
{
    api::SweepRequest base = sprtRequest();
    uint64_t fp = api::sweepFingerprint(base);

    api::SweepRequest changed = base;
    changed.ler.threads = 7;
    changed.shard.index = 1;
    changed.shard.count = 3;
    changed.checkpointPath = "elsewhere.json";
    changed.checkpointEveryChunks = 99;
    EXPECT_EQ(api::sweepFingerprint(changed), fp)
        << "threads/shard/checkpoint knobs never change a tally";
}

TEST(SweepFingerprint, EngineRejectsMismatchedResume)
{
    ScratchFile f("fp_mismatch");
    api::SweepRequest req = sprtRequest();
    api::makeSweepCheckpoint(req).saveAtomic(f.path);

    api::SweepRequest other = req;
    other.seed = 999;
    other.checkpointPath = f.path;
    api::Engine engine;
    EXPECT_THROW(engine.run(other), std::runtime_error)
        << "resuming a different request's checkpoint must be refused";
}

// --- validation -------------------------------------------------------------

TEST(SweepValidation, SprtWithoutDecisionLerThrowsActionably)
{
    api::SweepRequest req = sprtRequest();
    req.sprt.decisionLer = 0.0; // the default a caller forgets to set
    try {
        api::validateSweepRequest(req);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("decisionLer"),
                  std::string::npos)
            << "error should name the field to fix: " << e.what();
    }
}

TEST(SweepValidation, ShardIndexOutsideCountThrows)
{
    api::SweepRequest req = sprtRequest();
    req.shard.index = 2;
    req.shard.count = 2;
    EXPECT_THROW(api::validateSweepRequest(req), std::invalid_argument);
    req.shard.count = 0;
    EXPECT_THROW(api::validateSweepRequest(req), std::invalid_argument);
}

TEST(SweepValidation, AcceptsGoodRequests)
{
    EXPECT_NO_THROW(api::validateSweepRequest(sprtRequest()));
    api::SweepRequest fixed = sprtRequest();
    fixed.sprt.enabled = false;
    fixed.sprt.decisionLer = 0.0; // fine when SPRT is off
    EXPECT_NO_THROW(api::validateSweepRequest(fixed));
    api::SweepRequest clamped = sprtRequest();
    clamped.sprt.chunkShots = 0; // clamps to 1, not an error
    EXPECT_NO_THROW(api::validateSweepRequest(clamped));
}

// --- resume -----------------------------------------------------------------

TEST(SweepResume, EveryInterruptionOffsetResumesBitIdentically)
{
    api::SweepRequest req = sprtRequest();
    api::Engine engine;
    api::SweepResult oracle = engine.run(req);

    // A completed checkpointed run gives the full cell tallies...
    ScratchFile full_file("resume_full");
    api::SweepRequest ck_req = req;
    ck_req.checkpointPath = full_file.path;
    ck_req.checkpointEveryChunks = 1;
    expectEqualResults(engine.run(ck_req), oracle);
    api::SweepCheckpoint full = api::SweepCheckpoint::load(full_file.path);

    // ...from which we can reconstruct the checkpoint a SIGKILL would
    // have left after any number of completed cells, and resume it.
    api::SweepGrid grid = api::sweepGridFor(req);
    for (std::size_t cut = 0; cut <= grid.totalCells(); ++cut) {
        ScratchFile f("resume_cut");
        api::SweepCheckpoint partial = api::makeSweepCheckpoint(req);
        for (std::size_t p = 0; p < grid.numPoints; ++p) {
            for (std::size_t c = 0; c < grid.chunksPerPoint(); ++c) {
                if (grid.cellIndex(p, c) < cut) {
                    partial.points[p].chunks[c] = full.points[p].chunks[c];
                }
            }
        }
        partial.saveAtomic(f.path);
        api::SweepRequest resume = req;
        resume.checkpointPath = f.path;
        api::SweepResult resumed = engine.run(resume);
        SCOPED_TRACE("resumed after " + std::to_string(cut) + " cells");
        expectEqualResults(resumed, oracle);
    }
}

TEST(SweepResume, CompleteCheckpointResumesWithZeroNewShots)
{
    ScratchFile f("resume_noop");
    api::SweepRequest req = sprtRequest();
    req.checkpointPath = f.path;
    api::Engine engine;
    api::SweepResult first = engine.run(req);
    api::SweepResult again = engine.run(req);
    expectEqualResults(again, first);
    EXPECT_EQ(again.telemetry.shots, 0u)
        << "a complete checkpoint leaves nothing to sample";
}

TEST(SweepResume, ChunkShotsZeroBehavesAsChunkShotsOne)
{
    api::SweepRequest req = sprtRequest();
    req.shotsPerPoint = 48;
    req.ps = {1.6e-2};
    req.sprt.minShots = 8;
    req.sprt.chunkShots = 1;
    api::Engine engine;
    api::SweepResult one = engine.run(req);
    req.sprt.chunkShots = 0;
    api::SweepResult zero = engine.run(req);
    expectEqualResults(zero, one);
}

// --- sharding + merge -------------------------------------------------------

TEST(SweepShard, MergeMatchesSerialAcrossShardAndThreadCounts)
{
    api::SweepRequest req = sprtRequest();
    api::Engine engine;
    api::SweepResult oracle = engine.run(req);

    for (std::size_t count : {2u, 3u}) {
        for (std::size_t threads : {1u, 2u}) {
            std::vector<api::SweepCheckpoint> parts;
            for (std::size_t i = 0; i < count; ++i) {
                ScratchFile f("shard_" + std::to_string(count) + "_" +
                              std::to_string(i));
                api::SweepRequest shard = req;
                shard.ler.threads = threads;
                shard.shard.index = i;
                shard.shard.count = count;
                shard.checkpointPath = f.path;
                (void)engine.run(shard);
                parts.push_back(api::SweepCheckpoint::load(f.path));
            }
            // Merge order must not matter: reverse arrival.
            std::vector<api::SweepCheckpoint> reversed(parts.rbegin(),
                                                       parts.rend());
            api::SweepFinalize fin =
                api::finalizeSweep(api::mergeSweepCheckpoints(reversed));
            SCOPED_TRACE("shards=" + std::to_string(count) +
                         " threads=" + std::to_string(threads));
            EXPECT_TRUE(fin.complete);
            expectEqualResults(fin.result, oracle);
        }
    }
}

TEST(SweepShard, MergeRejectsForeignAndConflictingShards)
{
    api::SweepRequest req = sprtRequest();
    api::SweepCheckpoint a = api::makeSweepCheckpoint(req);

    // Different request entirely.
    api::SweepRequest other_req = req;
    other_req.seed = 1234;
    api::SweepCheckpoint other = api::makeSweepCheckpoint(other_req);
    EXPECT_THROW(api::mergeSweepCheckpoints({a, other}),
                 std::runtime_error);

    // Same request, disagreeing tallies for the same completed cell.
    api::SweepCheckpoint b = api::makeSweepCheckpoint(req);
    api::SweepChunkTally t;
    t.done = true;
    t.zShots = 256;
    t.zFailures = 1;
    t.xShots = 256;
    t.xFailures = 0;
    a.points[0].chunks[0] = t;
    t.zFailures = 2;
    b.points[0].chunks[0] = t;
    EXPECT_THROW(api::mergeSweepCheckpoints({a, b}), std::runtime_error);

    // Agreement is fine and unions the cells.
    t.zFailures = 1;
    b.points[0].chunks[0] = t;
    api::SweepChunkTally u = t;
    u.xFailures = 3;
    b.points[1].chunks[2] = u;
    api::SweepCheckpoint merged = api::mergeSweepCheckpoints({a, b});
    EXPECT_TRUE(merged.points[0].chunks[0] == t);
    EXPECT_TRUE(merged.points[1].chunks[2] == u);
    EXPECT_EQ(merged.shardCount, 1u);

    EXPECT_THROW(api::mergeSweepCheckpoints({}), std::runtime_error);
}

TEST(SweepShard, LateChunksCannotFlipAnEarlyDecision)
{
    // Build a checkpoint whose canonical prefix decides Below after two
    // chunks, then poison every later chunk with catastrophic failure
    // counts. The canonical evaluation must never read them.
    api::SweepRequest req = sprtRequest();
    req.ps = {1e-3};
    api::SweepCheckpoint cp = api::makeSweepCheckpoint(req);
    api::SweepGrid grid = api::sweepGridFor(req);
    for (std::size_t c = 0; c < grid.chunksPerPoint(); ++c) {
        api::SweepChunkTally t;
        t.done = true;
        t.zShots = 256;
        t.xShots = 256;
        if (c >= 2) { // a "late shard" reporting absurd failures
            t.zFailures = 256;
            t.xFailures = 256;
        }
        cp.points[0].chunks[c] = t;
    }
    api::SweepPrefix pre =
        api::evalSweepPrefix(cp.points[0], grid, cp.sprt);
    EXPECT_EQ(pre.decision, api::SprtDecision::Below);
    EXPECT_LE(pre.chunksConsumed, 2u);

    api::SweepFinalize fin = api::finalizeSweep(cp);
    ASSERT_EQ(fin.result.points.size(), 1u);
    EXPECT_EQ(fin.result.points[0].decision, api::SprtDecision::Below);
    EXPECT_EQ(fin.result.points[0].memory.z.failures, 0u)
        << "post-decision chunks must not leak into the tallies";
    EXPECT_TRUE(fin.complete);
}
