/**
 * @file
 * Deep end-to-end noise validation.
 *
 * 1. Linearity: the detector/observable flips of two simultaneous faults
 *    equal the XOR of their individual DEM signatures (the core premise
 *    of the whole circuit-level model).
 * 2. Statistics: Monte-Carlo sampling of the *actual noisy circuit* on
 *    the tableau simulator must reproduce the per-detector flip rates of
 *    the DEM sampler — the DEM is a faithful compression of the noisy
 *    circuit, not just an abstraction.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/surface.h"
#include "sim/dem_builder.h"
#include "sim/sampler.h"
#include "sim/tableau.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

/** Tableau run with an arbitrary list of injected faults. */
std::vector<uint8_t>
runWithFaults(const circuit::SmCircuit &circ, Rng &rng,
              const std::vector<FaultLoc> &faults)
{
    Tableau tab(circ.numQubits);
    std::vector<uint8_t> meas;
    meas.reserve(circ.numMeasurements);
    auto apply_pauli = [&](Pauli p, std::size_t q) {
        switch (p) {
        case Pauli::I:
            break;
        case Pauli::X:
            tab.applyX(q);
            break;
        case Pauli::Y:
            tab.applyY(q);
            break;
        case Pauli::Z:
            tab.applyZ(q);
            break;
        }
    };
    for (std::size_t i = 0; i < circ.instructions.size(); ++i) {
        const auto &ins = circ.instructions[i];
        bool before = ins.op == circuit::OpType::MeasureZ ||
                      ins.op == circuit::OpType::MeasureX;
        if (before) {
            for (const FaultLoc &f : faults) {
                if (f.instr == i) {
                    apply_pauli(f.p0, ins.qubits[0]);
                }
            }
        }
        switch (ins.op) {
        case circuit::OpType::ResetZ:
            tab.resetZ(ins.qubits[0], rng);
            break;
        case circuit::OpType::ResetX:
            tab.resetX(ins.qubits[0], rng);
            break;
        case circuit::OpType::Cnot:
            tab.applyCnot(ins.qubits[0], ins.qubits[1]);
            break;
        case circuit::OpType::MeasureZ:
            meas.push_back(tab.measureZ(ins.qubits[0], rng));
            break;
        case circuit::OpType::MeasureX:
            meas.push_back(tab.measureX(ins.qubits[0], rng));
            break;
        case circuit::OpType::Tick:
            break;
        }
        if (!before) {
            for (const FaultLoc &f : faults) {
                if (f.instr == i) {
                    apply_pauli(f.p0, ins.qubits[0]);
                    if (ins.qubits.size() > 1) {
                        apply_pauli(f.p1, ins.qubits[1]);
                    }
                }
            }
        }
    }
    return meas;
}

} // namespace

TEST(NoiseValidation, TwoFaultFlipsAreXorOfSingles)
{
    code::SurfaceCode s(3);
    auto circ = circuit::buildMemoryCircuit(circuit::nzSchedule(s), 2,
                                            circuit::MemoryBasis::Z);
    Dem dem = buildDem(circ, NoiseModel::uniform(1e-3));

    // Signature lookup per fault location.
    std::map<std::tuple<std::size_t, int, int>,
             std::pair<std::vector<uint32_t>, std::vector<uint32_t>>>
        sig;
    for (const auto &mech : dem.errors) {
        for (const FaultLoc &loc : mech.sources) {
            sig[{loc.instr, (int)loc.p0, (int)loc.p1}] = {
                mech.detectors, mech.observables};
        }
    }
    std::vector<FaultLoc> locs;
    for (const auto &mech : dem.errors) {
        locs.push_back(mech.sources.front());
    }

    uint64_t seed = 5;
    Rng ref_rng(seed);
    auto ref = runTableau(circ, ref_rng);
    auto ref_det = detectorValues(circ, ref);

    Rng pick(77);
    for (int trial = 0; trial < 40; ++trial) {
        const FaultLoc &a = locs[pick.below(locs.size())];
        const FaultLoc &b = locs[pick.below(locs.size())];
        if (a.instr == b.instr) {
            continue; // same-site faults compose as Pauli products
        }
        Rng rng(seed);
        auto meas = runWithFaults(circ, rng, {a, b});
        auto det = detectorValues(circ, meas);
        // Expected: XOR of the two single-fault signatures.
        std::vector<uint8_t> expected = ref_det;
        for (const FaultLoc *f : {&a, &b}) {
            const auto &fs =
                sig.at({f->instr, (int)f->p0, (int)f->p1}).first;
            for (uint32_t d : fs) {
                expected[d] ^= 1;
            }
        }
        ASSERT_EQ(det, expected)
            << "faults at instr " << a.instr << " and " << b.instr;
    }
}

TEST(NoiseValidation, NoisyTableauMatchesDemSamplerStatistics)
{
    // Sample the *circuit* with explicit per-gate Pauli noise on the
    // tableau simulator and compare aggregate detector statistics with
    // the DEM sampler at the same physical rate.
    code::SurfaceCode s(3);
    auto circ = circuit::buildMemoryCircuit(circuit::nzSchedule(s), 2,
                                            circuit::MemoryBasis::Z);
    double p = 2e-2; // high rate for statistical power at modest shots
    Dem dem = buildDem(circ, NoiseModel::uniform(p));

    std::size_t shots = 3000;
    Rng noise_rng(11);
    double circ_flips = 0, circ_obs = 0;
    for (std::size_t shot = 0; shot < shots; ++shot) {
        // Draw the noisy realization: one fault list for this shot.
        std::vector<FaultLoc> faults;
        for (std::size_t i = 0; i < circ.instructions.size(); ++i) {
            const auto &ins = circ.instructions[i];
            switch (ins.op) {
            case circuit::OpType::ResetZ:
            case circuit::OpType::ResetX:
            case circuit::OpType::MeasureZ:
            case circuit::OpType::MeasureX:
                if (noise_rng.uniform() < p) {
                    FaultLoc f;
                    f.instr = i;
                    f.p0 = (Pauli)(1 + noise_rng.below(3));
                    faults.push_back(f);
                }
                break;
            case circuit::OpType::Cnot:
                if (noise_rng.uniform() < p) {
                    FaultLoc f;
                    f.instr = i;
                    std::size_t idx = 1 + noise_rng.below(15);
                    f.p0 = (Pauli)(idx / 4);
                    f.p1 = (Pauli)(idx % 4);
                    faults.push_back(f);
                }
                break;
            case circuit::OpType::Tick:
                break;
            }
        }
        Rng run_rng(shot * 31 + 7);
        auto meas = runWithFaults(circ, run_rng, faults);
        for (uint8_t d : detectorValues(circ, meas)) {
            circ_flips += d;
        }
        for (uint8_t o : observableValues(circ, meas)) {
            circ_obs += o;
        }
    }
    circ_flips /= shots;
    circ_obs /= shots;

    SampleBatch batch = sampleDem(dem, shots * 4, 13);
    double dem_flips = 0, dem_obs = 0;
    for (std::size_t shot = 0; shot < batch.shots; ++shot) {
        dem_flips += batch.flippedDetectors(shot).size();
        dem_obs += std::popcount(batch.obsMask(shot));
    }
    dem_flips /= batch.shots;
    dem_obs /= batch.shots;

    EXPECT_NEAR(circ_flips, dem_flips, 0.08 * dem_flips + 0.05);
    EXPECT_NEAR(circ_obs, dem_obs, 0.25 * std::max(dem_obs, 0.05));
}
