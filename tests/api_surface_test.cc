/**
 * @file
 * Small-surface-area API tests: accessors, error paths, and conversions
 * not exercised elsewhere.
 */
#include <gtest/gtest.h>

#include <memory>

#include "circuit/coloration.h"
#include "code/surface.h"
#include "gf2/matrix.h"
#include "sat/cardinality.h"
#include "sim/dem.h"
#include "sim/rng.h"
#include "zne/extrapolation.h"

using namespace prophunt;

TEST(BitVecApi, ResizePreservesPrefixAndZeroesTail)
{
    gf2::BitVec v = gf2::BitVec::fromBits({1, 0, 1});
    v.resize(70);
    EXPECT_EQ(v.size(), 70u);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(2));
    EXPECT_EQ(v.popcount(), 2u);
    v.set(69, true);
    v.resize(3);
    EXPECT_EQ(v.popcount(), 2u);
    v.resize(70);
    EXPECT_FALSE(v.get(69)) << "tail bits must be cleared on shrink";
}

TEST(BitVecApi, ToStringRoundTrip)
{
    gf2::BitVec v = gf2::BitVec::fromBits({1, 0, 0, 1, 1});
    EXPECT_EQ(v.toString(), "10011");
}

TEST(MatrixApi, ColumnExtraction)
{
    gf2::Matrix m = gf2::Matrix::fromRows({{1, 0}, {1, 1}, {0, 1}});
    EXPECT_EQ(m.column(0), gf2::BitVec::fromBits({1, 1, 0}));
    EXPECT_EQ(m.column(1), gf2::BitVec::fromBits({0, 1, 1}));
}

TEST(MatrixApi, ShapeMismatchThrows)
{
    gf2::Matrix m = gf2::Matrix::fromRows({{1, 0}});
    EXPECT_THROW(m.mulVec(gf2::BitVec(3)), std::invalid_argument);
    EXPECT_THROW(m.appendRow(gf2::BitVec(3)), std::invalid_argument);
    gf2::Matrix other = gf2::Matrix::fromRows({{1, 0, 1}});
    EXPECT_THROW(m.mul(other), std::invalid_argument);
    EXPECT_THROW((void)m.hstack(gf2::Matrix(2, 2)),
                 std::invalid_argument);
}

TEST(ScheduleApi, PositionLookupsThrowOnMiss)
{
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    circuit::SmSchedule sched = circuit::colorationSchedule(cp);
    // Check 0 is an X face; find a qubit it does not touch.
    std::size_t outside = 0;
    auto support = s.code().checkSupport(0);
    while (std::find(support.begin(), support.end(), outside) !=
           support.end()) {
        ++outside;
    }
    EXPECT_THROW((void)sched.posInCheck(0, outside),
                 std::invalid_argument);
    EXPECT_THROW((void)sched.withRelativeSwap(outside, 0, 0),
                 std::invalid_argument);
}

TEST(CardinalityApi, DegenerateBounds)
{
    sat::Solver s;
    std::vector<sat::Lit> xs{sat::mkLit(s.newVar())};
    EXPECT_TRUE(sat::encodeCounter(s, xs, 0).empty());
    EXPECT_TRUE(sat::encodeCounter(s, {}, 3).empty());
    // max_count beyond n clamps to n outputs.
    auto outs = sat::encodeCounter(s, xs, 5);
    EXPECT_EQ(outs.size(), 1u);
}

TEST(RngApi, DeterministicAndWellDistributed)
{
    sim::Rng a(42), b(42), c(43);
    for (int i = 0; i < 8; ++i) {
        uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
    }
    // Different seeds diverge.
    sim::Rng a2(42);
    bool differs = false;
    for (int i = 0; i < 8; ++i) {
        if (a2.next() != c.next()) {
            differs = true;
        }
    }
    EXPECT_TRUE(differs);
    // uniform() stays in [0, 1) and has a sane mean.
    sim::Rng u(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double x = u.uniform();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(DemApi, AdjacencyIsConsistentWithMechanisms)
{
    sim::Dem dem;
    dem.numDetectors = 3;
    dem.numObservables = 1;
    sim::ErrorMechanism a, b;
    a.p = 0.1;
    a.detectors = {0, 2};
    b.p = 0.2;
    b.detectors = {1};
    b.observables = {0};
    dem.errors = {a, b};
    auto adj = dem.detectorToErrors();
    ASSERT_EQ(adj.size(), 3u);
    EXPECT_EQ(adj[0], std::vector<uint32_t>{0});
    EXPECT_EQ(adj[1], std::vector<uint32_t>{1});
    EXPECT_EQ(adj[2], std::vector<uint32_t>{0});
    EXPECT_EQ(dem.checkMatrix().rank(), 2u);
}

TEST(ExtrapolationApi, SinglePointDegeneratesToValue)
{
    EXPECT_NEAR(zne::extrapolateLinear({2.0}, {0.7}), 0.7, 1e-12);
    EXPECT_NEAR(zne::extrapolateRichardson({2.0}, {0.7}), 0.7, 1e-12);
    EXPECT_NEAR(zne::extrapolateExponential({2.0}, {0.7}), 0.7, 1e-9);
}
