/**
 * @file
 * Tests for extrapolation fits and the DS-ZNE / Hook-ZNE estimators.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "zne/extrapolation.h"
#include "zne/zne.h"

using namespace prophunt::zne;

TEST(Extrapolation, LinearExactOnLine)
{
    std::vector<double> xs{1, 2, 3, 4};
    std::vector<double> ys;
    for (double x : xs) {
        ys.push_back(3.0 - 0.5 * x);
    }
    EXPECT_NEAR(extrapolateLinear(xs, ys), 3.0, 1e-12);
}

TEST(Extrapolation, ExponentialExactOnExponential)
{
    std::vector<double> xs{1, 2, 4, 8};
    std::vector<double> ys;
    for (double x : xs) {
        ys.push_back(0.9 * std::exp(-0.3 * x));
    }
    EXPECT_NEAR(extrapolateExponential(xs, ys), 0.9, 1e-9);
}

TEST(Extrapolation, ExponentialFallsBackOnNegative)
{
    std::vector<double> xs{1, 2};
    std::vector<double> ys{0.5, -0.1};
    // Falls back to the linear fit: intercept = 1.1.
    EXPECT_NEAR(extrapolateExponential(xs, ys), 1.1, 1e-9);
}

TEST(Extrapolation, RichardsonExactOnPolynomial)
{
    // y = 2 - x + 0.5 x^2 through 3 points: exact recovery at 0.
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys;
    for (double x : xs) {
        ys.push_back(2.0 - x + 0.5 * x * x);
    }
    EXPECT_NEAR(extrapolateRichardson(xs, ys), 2.0, 1e-9);
}

TEST(Extrapolation, BadInputThrows)
{
    EXPECT_THROW(extrapolateLinear({}, {}), std::invalid_argument);
    EXPECT_THROW(extrapolateLinear({1.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(Zne, SuppressionModel)
{
    // Lambda = 4, d = 3: P_L = 4^-2 = 1/16.
    EXPECT_NEAR(logicalErrorRate(4.0, 3.0), 1.0 / 16.0, 1e-12);
    // Larger distance suppresses more.
    EXPECT_LT(logicalErrorRate(2.0, 9.0), logicalErrorRate(2.0, 7.0));
    // Fractional distances interpolate smoothly.
    double a = logicalErrorRate(2.0, 7.0);
    double m = logicalErrorRate(2.0, 7.5);
    double b = logicalErrorRate(2.0, 8.0);
    EXPECT_GT(a, m);
    EXPECT_GT(m, b);
}

TEST(Zne, RbExpectationDecays)
{
    EXPECT_NEAR(rbExpectation(0.0, 50), 1.0, 1e-12);
    EXPECT_LT(rbExpectation(0.01, 50), 1.0);
    EXPECT_GT(rbExpectation(0.01, 50), rbExpectation(0.02, 50));
}

TEST(Zne, SampledExpectationUnbiased)
{
    prophunt::sim::Rng rng(2);
    double eps = 0.005;
    std::size_t depth = 50;
    double exact = rbExpectation(eps, depth);
    double total = 0;
    int trials = 200;
    for (int t = 0; t < trials; ++t) {
        total += sampleRbExpectation(eps, depth, 2000, rng);
    }
    EXPECT_NEAR(total / trials, exact, 0.01);
}

TEST(Zne, LaddersHaveFourLevels)
{
    auto ds = dsZneDistances(13);
    auto hook = hookZneDistances(13);
    EXPECT_EQ(ds.size(), 4u);
    EXPECT_EQ(hook.size(), 4u);
    EXPECT_EQ(ds[3], 7.0);
    EXPECT_EQ(hook[3], 11.5);
}

TEST(Zne, EstimateNearIdealWithManyShots)
{
    ZneConfig cfg;
    cfg.lambdaSuppression = 2.0;
    cfg.depth = 50;
    cfg.totalShots = 400000;
    prophunt::sim::Rng rng(5);
    double est = zneEstimate(hookZneDistances(13.0), cfg, rng);
    EXPECT_NEAR(est, 1.0, 0.05);
}

TEST(Zne, HookBeatsDsAcrossRanges)
{
    // The paper's Figure 16b configuration: Lambda=2, depth 50, 20k shots.
    ZneConfig cfg;
    cfg.lambdaSuppression = 2.0;
    cfg.depth = 50;
    cfg.totalShots = 20000;
    for (double dmax : {13.0, 11.0, 9.0}) {
        double ds = zneBias(dsZneDistances(dmax), cfg, 120, 77);
        double hook = zneBias(hookZneDistances(dmax), cfg, 120, 77);
        EXPECT_LT(hook, ds) << "d_max = " << dmax;
    }
}
