/**
 * @file
 * Tests for the PropHunt core: subgraph finding, ambiguity, min-weight
 * MaxSAT solving, change enumeration, pruning, and the optimizer loop.
 */
#include <gtest/gtest.h>

#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "prophunt/optimizer.h"
#include "sim/dem_builder.h"

using namespace prophunt;
using namespace prophunt::core;

namespace {

struct Harness
{
    circuit::SmSchedule sched;
    circuit::SmCircuit circ;
    sim::Dem dem;
};

Harness
build(const circuit::SmSchedule &s, std::size_t rounds, double p,
      circuit::MemoryBasis basis)
{
    Harness out{s, circuit::buildMemoryCircuit(s, rounds, basis), {}};
    out.dem = sim::buildDem(out.circ, sim::NoiseModel::uniform(p));
    return out;
}

} // namespace

TEST(Subgraph, InteriorErrorsAreContained)
{
    code::SurfaceCode s(3);
    Harness st =
        build(circuit::nzSchedule(s), 3, 1e-3, circuit::MemoryBasis::Z);
    SubgraphFinder finder(st.dem);
    sim::Rng rng(1);
    for (int trial = 0; trial < 30; ++trial) {
        Subgraph sg = finder.sample(rng, 24);
        std::set<uint32_t> dets(sg.detectors.begin(), sg.detectors.end());
        for (uint32_t e : sg.errors) {
            for (uint32_t d : st.dem.errors[e].detectors) {
                EXPECT_TRUE(dets.count(d))
                    << "interior error leaks outside the subgraph";
            }
        }
    }
}

TEST(Subgraph, AmbiguityMatchesRowspaceDefinition)
{
    code::SurfaceCode s(3);
    Harness st = build(circuit::poorSurfaceSchedule(s), 3, 1e-3,
                     circuit::MemoryBasis::Z);
    SubgraphFinder finder(st.dem);
    sim::Rng rng(7);
    bool found_ambiguous = false;
    for (int trial = 0; trial < 50 && !found_ambiguous; ++trial) {
        Subgraph sg = finder.sample(rng, 32);
        // Re-check the returned flag against the definition.
        EXPECT_EQ(sg.ambiguous,
                  hasAmbiguity(st.dem, sg.detectors, sg.errors));
        found_ambiguous |= sg.ambiguous;
    }
    EXPECT_TRUE(found_ambiguous)
        << "poor d=3 schedule must contain ambiguity";
}

TEST(MinWeight, SubgraphSolutionIsUndetectedLogical)
{
    code::SurfaceCode s(3);
    Harness st = build(circuit::poorSurfaceSchedule(s), 3, 1e-3,
                     circuit::MemoryBasis::Z);
    SubgraphFinder finder(st.dem);
    sim::Rng rng(3);
    for (int trial = 0; trial < 60; ++trial) {
        Subgraph sg = finder.sample(rng, 32);
        if (!sg.ambiguous) {
            continue;
        }
        MinWeightResult mw = solveMinWeightLogical(st.dem, sg, 12, 10.0);
        ASSERT_TRUE(mw.found);
        EXPECT_EQ(mw.errors.size(), mw.weight);
        EXPECT_GE(mw.weight, 1u);
        // XOR of detector signatures is zero; observables flip.
        std::vector<int> det_par(st.dem.numDetectors, 0);
        std::vector<int> obs_par(st.dem.numObservables, 0);
        for (uint32_t e : mw.errors) {
            for (uint32_t d : st.dem.errors[e].detectors) {
                det_par[d] ^= 1;
            }
            for (uint32_t o : st.dem.errors[e].observables) {
                obs_par[o] ^= 1;
            }
        }
        for (int v : det_par) {
            EXPECT_EQ(v, 0);
        }
        int flipped = 0;
        for (int v : obs_par) {
            flipped += v;
        }
        EXPECT_GE(flipped, 1);
        return;
    }
    FAIL() << "no ambiguous subgraph found";
}

TEST(MinWeight, GlobalFindsEffectiveDistance)
{
    // d=3 with the good schedule: min undetected logical error needs 3
    // faults; the poor schedule drops this to 2.
    code::SurfaceCode s(3);
    Harness good =
        build(circuit::nzSchedule(s), 3, 1e-3, circuit::MemoryBasis::Z);
    MinWeightResult mg = solveGlobalMinWeight(good.dem, 6, 60.0);
    ASSERT_TRUE(mg.found);
    EXPECT_EQ(mg.weight, 3u);

    Harness poor = build(circuit::poorSurfaceSchedule(s), 3, 1e-3,
                       circuit::MemoryBasis::Z);
    MinWeightResult mp = solveGlobalMinWeight(poor.dem, 6, 60.0);
    ASSERT_TRUE(mp.found);
    EXPECT_EQ(mp.weight, 2u);
}

TEST(EffectiveDistance, SubgraphEstimateMatchesGlobal)
{
    code::SurfaceCode s(3);
    std::size_t good = estimateEffectiveDistance(circuit::nzSchedule(s), 3,
                                                 1e-3, 200, 5);
    std::size_t poor = estimateEffectiveDistance(
        circuit::poorSurfaceSchedule(s), 3, 1e-3, 200, 5);
    EXPECT_EQ(good, 3u);
    EXPECT_EQ(poor, 2u);
}

TEST(Changes, EnumerationProducesApplicableCandidates)
{
    code::SurfaceCode s(3);
    Harness st = build(circuit::poorSurfaceSchedule(s), 3, 1e-3,
                     circuit::MemoryBasis::Z);
    SubgraphFinder finder(st.dem);
    sim::Rng rng(11);
    for (int trial = 0; trial < 80; ++trial) {
        Subgraph sg = finder.sample(rng, 32);
        if (!sg.ambiguous) {
            continue;
        }
        MinWeightResult mw = solveMinWeightLogical(st.dem, sg, 12, 10.0);
        if (!mw.found) {
            continue;
        }
        auto changes =
            enumerateChanges(st.sched, st.dem, st.circ, mw.errors, rng);
        EXPECT_GT(changes.size(), 0u);
        for (const auto &ch : changes) {
            // Applying must not throw; validity may legitimately fail.
            circuit::SmSchedule modified = ch.apply(st.sched);
            (void)modified.commutationValid();
            EXPECT_FALSE(ch.key().empty());
        }
        return;
    }
    FAIL() << "no solvable ambiguous subgraph";
}

TEST(Changes, KeysAreUnique)
{
    code::SurfaceCode s(3);
    Harness st = build(circuit::poorSurfaceSchedule(s), 3, 1e-3,
                     circuit::MemoryBasis::Z);
    SubgraphFinder finder(st.dem);
    sim::Rng rng(13);
    for (int trial = 0; trial < 80; ++trial) {
        Subgraph sg = finder.sample(rng, 32);
        if (!sg.ambiguous) {
            continue;
        }
        MinWeightResult mw = solveMinWeightLogical(st.dem, sg, 12, 10.0);
        if (!mw.found) {
            continue;
        }
        auto changes =
            enumerateChanges(st.sched, st.dem, st.circ, mw.errors, rng);
        std::set<std::string> keys;
        for (const auto &ch : changes) {
            EXPECT_TRUE(keys.insert(ch.key()).second);
        }
        return;
    }
    FAIL() << "no solvable ambiguous subgraph";
}

TEST(Pruning, VerifiedChangeResolvesAmbiguity)
{
    code::SurfaceCode s(3);
    Harness st = build(circuit::poorSurfaceSchedule(s), 3, 1e-3,
                     circuit::MemoryBasis::Z);
    SubgraphFinder finder(st.dem);
    sim::Rng rng(17);
    sim::NoiseModel noise = sim::NoiseModel::uniform(1e-3);
    for (int trial = 0; trial < 120; ++trial) {
        Subgraph sg = finder.sample(rng, 32);
        if (!sg.ambiguous) {
            continue;
        }
        MinWeightResult mw = solveMinWeightLogical(st.dem, sg, 12, 10.0);
        if (!mw.found) {
            continue;
        }
        auto changes =
            enumerateChanges(st.sched, st.dem, st.circ, mw.errors, rng);
        for (const auto &ch : changes) {
            auto vc = verifyChange(st.sched, ch, sg.detectors, mw.errors,
                                   st.dem, 3, circuit::MemoryBasis::Z,
                                   noise);
            if (!vc) {
                continue;
            }
            // Verified change: re-check independently that ambiguity is
            // gone on the original detector set.
            circuit::SmCircuit circ2 = circuit::buildMemoryCircuit(
                vc->schedule, 3, circuit::MemoryBasis::Z);
            sim::Dem dem2 = sim::buildDem(circ2, noise);
            auto interior = interiorErrors(dem2, sg.detectors);
            EXPECT_FALSE(hasAmbiguity(dem2, sg.detectors, interior));
            EXPECT_TRUE(vc->schedule.commutationValid());
            EXPECT_TRUE(vc->schedule.schedulable());
            return;
        }
    }
    GTEST_SKIP() << "no verifiable change found in the budget";
}

TEST(Optimizer, ImprovesPoorD3Schedule)
{
    code::SurfaceCode s(3);
    PropHuntOptions opts;
    opts.iterations = 6;
    opts.samplesPerIteration = 150;
    opts.seed = 3;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    PropHunt tool(opts);
    OptimizeResult res = tool.optimize(circuit::poorSurfaceSchedule(s), 3);
    ASSERT_FALSE(res.history.empty());
    // The effective distance must recover from 2 to 3.
    std::size_t final_deff =
        estimateEffectiveDistance(res.finalSchedule(), 3, 1e-3, 300, 9);
    EXPECT_EQ(final_deff, 3u);
    // Snapshots include the input and one per iteration.
    EXPECT_EQ(res.snapshots.size(), res.history.size() + 1);
    EXPECT_TRUE(res.finalSchedule().commutationValid());
    EXPECT_TRUE(res.finalSchedule().schedulable());
}

TEST(Optimizer, RecordsSolveTelemetry)
{
    code::SurfaceCode s(3);
    PropHuntOptions opts;
    opts.iterations = 2;
    opts.samplesPerIteration = 100;
    opts.seed = 5;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    PropHunt tool(opts);
    OptimizeResult res =
        tool.optimize(circuit::poorSurfaceSchedule(s), 3);
    ASSERT_FALSE(res.history.empty());
    const auto &rec = res.history[0];
    EXPECT_GT(rec.ambiguousFound, 0u);
    EXPECT_FALSE(rec.solveStats.empty());
    for (const auto &st : rec.solveStats) {
        EXPECT_GT(st.variables, 0u);
        EXPECT_GT(st.hardClauses, 0u);
        EXPECT_GT(st.softClauses, 0u);
    }
}

TEST(Optimizer, ConvergesOnAlreadyGoodSchedule)
{
    // The N-Z schedule has d_eff = d; PropHunt should find little or no
    // low-weight ambiguity within a small expansion budget and terminate
    // without breaking the schedule.
    code::SurfaceCode s(3);
    PropHuntOptions opts;
    opts.iterations = 3;
    opts.samplesPerIteration = 100;
    opts.maxSubgraphErrors = 20;
    opts.seed = 11;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    PropHunt tool(opts);
    OptimizeResult res = tool.optimize(circuit::nzSchedule(s), 3);
    std::size_t deff =
        estimateEffectiveDistance(res.finalSchedule(), 3, 1e-3, 300, 13);
    EXPECT_EQ(deff, 3u);
}
