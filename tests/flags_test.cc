/**
 * @file
 * Tests for the flag fault-tolerance extension: structure, noiseless
 * determinism (via the tableau simulator), and hook detection.
 */
#include <gtest/gtest.h>

#include <memory>

#include "circuit/coloration.h"
#include "circuit/flags.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "prophunt/optimizer.h"
#include "sim/dem_builder.h"
#include "sim/tableau.h"

using namespace prophunt;
using namespace prophunt::circuit;

TEST(Flags, StructureCounts)
{
    code::SurfaceCode s(3);
    SmCircuit c =
        buildFlaggedMemoryCircuit(circuit::nzSchedule(s), 2,
                                  MemoryBasis::Z, 4);
    // d=3 surface: 4 weight-4 faces of each type get flags; 4 weight-2
    // boundary faces do not.
    std::size_t m = s.code().numChecks();
    std::size_t f = 4; // interior faces (weight 4): (d-1)^2 = 4
    EXPECT_EQ(c.numQubits, s.code().n() + m + f);
    EXPECT_EQ(c.numMeasurements, 2 * (m + f) + s.code().n());
    // Two flag couplings per flagged check per round.
    SmCircuit plain =
        buildMemoryCircuit(circuit::nzSchedule(s), 2, MemoryBasis::Z);
    EXPECT_EQ(c.countCnots(), plain.countCnots() + 2 * f * 2);
    // Flag detectors exist: one per flag per round.
    EXPECT_EQ(c.detectors.size(), plain.detectors.size() + 2 * f);
}

TEST(Flags, NoiselessDeterminism)
{
    // The strongest check: with flags inserted, every detector (including
    // all flag detectors) must still be deterministically zero.
    code::SurfaceCode s(3);
    for (auto basis : {MemoryBasis::Z, MemoryBasis::X}) {
        SmCircuit c = buildFlaggedMemoryCircuit(circuit::nzSchedule(s), 3,
                                                basis, 4);
        sim::Rng rng(17);
        auto meas = sim::runTableau(c, rng);
        for (uint8_t d : sim::detectorValues(c, meas)) {
            ASSERT_EQ(d, 0);
        }
        for (uint8_t o : sim::observableValues(c, meas)) {
            ASSERT_EQ(o, 0);
        }
    }
}

TEST(Flags, NoiselessDeterminismLdpc)
{
    auto cp =
        std::make_shared<const code::CssCode>(code::benchmarkLp39());
    SmCircuit c = buildFlaggedMemoryCircuit(
        circuit::colorationSchedule(cp), 2, MemoryBasis::Z, 4);
    sim::Rng rng(23);
    auto meas = sim::runTableau(c, rng);
    for (uint8_t d : sim::detectorValues(c, meas)) {
        ASSERT_EQ(d, 0);
    }
}

TEST(Flags, MidSequenceHooksFlipTheFlag)
{
    // Inject an ancilla fault between the two flag couplings of a
    // weight-4 check and confirm a flag detector fires.
    code::SurfaceCode s(3);
    SmCircuit c = buildFlaggedMemoryCircuit(
        circuit::poorSurfaceSchedule(s), 2, MemoryBasis::Z, 4);
    sim::Dem dem = sim::buildDem(c, sim::NoiseModel::uniform(1e-3));
    // Flag detectors are those whose source check index >= numChecks.
    std::size_t m = s.code().numChecks();
    std::size_t hooks_flagging = 0, hooks_total = 0;
    for (const auto &mech : dem.errors) {
        bool is_mid_hook = false;
        for (const auto &loc : mech.sources) {
            if (!loc.isCnot || loc.cnot.flag) {
                continue;
            }
            bool cx = s.code().isXCheck(loc.cnot.check);
            std::size_t w =
                s.code().checkSupport(loc.cnot.check).size();
            if (w < 4) {
                continue;
            }
            // Mid-sequence ancilla component (positions 1..w-2).
            bool anc_pauli =
                cx ? (loc.p0 == sim::Pauli::X || loc.p0 == sim::Pauli::Y)
                   : (loc.p1 == sim::Pauli::Z || loc.p1 == sim::Pauli::Y);
            if (anc_pauli && loc.cnot.posInCheck >= 1 &&
                loc.cnot.posInCheck + 2 <= w) {
                is_mid_hook = true;
            }
        }
        if (!is_mid_hook) {
            continue;
        }
        ++hooks_total;
        for (uint32_t d : mech.detectors) {
            if (c.detectorSource[d].first >= m) {
                ++hooks_flagging;
                break;
            }
        }
    }
    ASSERT_GT(hooks_total, 0u);
    // The great majority of mid-sequence hooks must raise a flag.
    EXPECT_GE(hooks_flagging * 10, hooks_total * 8);
}

TEST(Flags, FlagsRestoreEffectiveDistanceInDecoding)
{
    // The poor d=3 schedule has circuit-level d_eff = 2. With flags, the
    // distance-reducing hooks become flagged (extra detectors), so the
    // weight-2 undetected logical errors disappear: the min undetected
    // logical error weight must rise back to 3.
    code::SurfaceCode s(3);
    SmCircuit flagged = buildFlaggedMemoryCircuit(
        circuit::poorSurfaceSchedule(s), 3, MemoryBasis::Z, 4);
    sim::Dem dem = sim::buildDem(flagged, sim::NoiseModel::uniform(1e-3));
    core::MinWeightResult mw = core::solveGlobalMinWeight(dem, 6, 120.0);
    ASSERT_TRUE(mw.found);
    EXPECT_GE(mw.weight, 3u);
}
