/**
 * @file
 * End-to-end integration tests: the full paper pipeline on small codes.
 */
#include <gtest/gtest.h>

#include <memory>

#include "circuit/coloration.h"
#include "circuit/surface_schedules.h"
#include "code/codes.h"
#include "code/surface.h"
#include "decoder/bp_osd.h"
#include "decoder/logical_error.h"
#include "prophunt/optimizer.h"
#include "sim/dem_builder.h"

using namespace prophunt;

TEST(Integration, PropHuntRecoversHandDesignedPerformance)
{
    // The paper's headline claim for surface codes (Fig. 12): starting
    // from the generic coloration circuit, PropHunt reaches the LER of
    // the hand-designed schedule.
    code::SurfaceCode s(3);
    auto cp = std::make_shared<const code::CssCode>(s.code());
    circuit::SmSchedule coloration = circuit::colorationSchedule(cp);

    core::PropHuntOptions opts;
    opts.iterations = 8;
    opts.samplesPerIteration = 200;
    opts.seed = 7;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    core::PropHunt tool(opts);
    core::OptimizeResult res = tool.optimize(coloration, 3);

    sim::NoiseModel noise = sim::NoiseModel::uniform(3e-3);
    auto ler = [&](const circuit::SmSchedule &sched) {
        return decoder::measureMemoryLer(sched, 3, noise,
                                         "union_find",
                                         30000, 99)
            .combined();
    };
    double start = ler(coloration);
    double end = ler(res.finalSchedule());
    double hand = ler(circuit::nzSchedule(s));

    EXPECT_LT(end, start) << "optimization must improve the start";
    EXPECT_LT(end, hand * 1.6)
        << "optimized circuit should be close to hand-designed quality";
}

TEST(Integration, OptimizerImprovesLdpcCode)
{
    // LP code: PropHunt should not regress the coloration circuit, and
    // the found min-weight telemetry should reach the code distance.
    auto code = code::benchmarkLp39();
    auto cp = std::make_shared<const code::CssCode>(code);
    circuit::SmSchedule coloration = circuit::colorationSchedule(cp);

    core::PropHuntOptions opts;
    opts.iterations = 4;
    opts.samplesPerIteration = 120;
    opts.maxSubgraphErrors = 32;
    opts.seed = 13;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    core::PropHunt tool(opts);
    core::OptimizeResult res = tool.optimize(coloration, 3);

    sim::NoiseModel noise = sim::NoiseModel::uniform(2e-3);
    // Exact decoder mode (stagnationWindow = 0): keeps this ratio bound
    // calibrated to the original decoder, independent of BP cutoff tuning.
    decoder::BpOsdOptions exact;
    exact.stagnationWindow = 0;
    auto ler = [&](const circuit::SmSchedule &sched) {
        double ok = 1.0;
        for (auto basis :
             {circuit::MemoryBasis::Z, circuit::MemoryBasis::X}) {
            auto circ = circuit::buildMemoryCircuit(sched, 3, basis);
            auto dem = sim::buildDem(circ, noise);
            decoder::BpOsdDecoder dec(dem, exact);
            auto r = decoder::measureDemLer(
                dem, dec, 3000,
                101 ^ (basis == circuit::MemoryBasis::X
                           ? 0x9e3779b97f4a7c15ULL
                           : 0));
            ok *= 1.0 - r.ler();
        }
        return 1.0 - ok;
    };
    double start = ler(coloration);
    double end = ler(res.finalSchedule());
    EXPECT_LT(end, start * 1.35)
        << "optimized schedule must not regress materially";
    EXPECT_TRUE(res.finalSchedule().commutationValid());
}

TEST(Integration, IntermediateSnapshotsSpanLerRange)
{
    // Hook-ZNE's raw material: intermediate schedules from a run on the
    // poor schedule must have LERs between start and end.
    code::SurfaceCode s(3);
    core::PropHuntOptions opts;
    opts.iterations = 5;
    opts.samplesPerIteration = 150;
    opts.seed = 21;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    core::PropHunt tool(opts);
    core::OptimizeResult res =
        tool.optimize(circuit::poorSurfaceSchedule(s), 3);
    ASSERT_GE(res.snapshots.size(), 2u);

    sim::NoiseModel noise = sim::NoiseModel::uniform(3e-3);
    std::vector<double> lers;
    for (const auto &snap : res.snapshots) {
        lers.push_back(decoder::measureMemoryLer(
                           snap, 3, noise,
                           "union_find", 20000, 55)
                           .combined());
    }
    EXPECT_LT(lers.back(), lers.front())
        << "optimization must reduce the LER end to end";
}

TEST(Integration, DemDetectorCountsStableAcrossSnapshots)
{
    // Detector indexing must stay comparable across schedule changes —
    // the property pruning relies on.
    code::SurfaceCode s(3);
    core::PropHuntOptions opts;
    opts.iterations = 3;
    opts.samplesPerIteration = 100;
    opts.seed = 31;
    opts.threads = 1; // One sampling worker: machine-independent trajectory.
    core::PropHunt tool(opts);
    core::OptimizeResult res =
        tool.optimize(circuit::poorSurfaceSchedule(s), 3);
    sim::NoiseModel noise = sim::NoiseModel::uniform(1e-3);
    std::size_t dets = 0;
    for (const auto &snap : res.snapshots) {
        auto circ =
            circuit::buildMemoryCircuit(snap, 3, circuit::MemoryBasis::Z);
        auto dem = sim::buildDem(circ, noise);
        if (dets == 0) {
            dets = dem.numDetectors;
        }
        EXPECT_EQ(dem.numDetectors, dets);
    }
}
