/**
 * @file
 * Packed-decode contracts of the lane engine.
 *
 * decodePacked must equal decodeBatch must equal per-shot decode(),
 * observable for observable, for every laneWidth — 0 (the transpose +
 * batched adapter), 4/8 (AVX2 kernels where available), the maximum
 * width, and an odd width that exercises the scalar remainder lanes —
 * across random DEMs and lp39/rqt54 circuit DEMs, including odd shot
 * counts that leave a partial final 64-shot word. Also pins down the
 * engine's shot-order/thread-count invariance through measureDemLer and
 * the generic (no-AVX2) kernel cross-check.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "circuit/coloration.h"
#include "code/codes.h"
#include "code/surface.h"
#include "decoder/bp_osd.h"
#include "decoder/logical_error.h"
#include "decoder/union_find.h"
#include "sim/dem_builder.h"
#include "sim/frame_sampler.h"
#include "sim/rng.h"
#include "sim/sampler.h"

using namespace prophunt;
using namespace prophunt::sim;

namespace {

/** Random sparse DEM: ne mechanisms over nd detectors. */
Dem
randomDem(uint64_t seed, std::size_t nd, std::size_t ne, double max_p)
{
    Rng rng(seed);
    Dem dem;
    dem.numDetectors = nd;
    dem.numObservables = 2;
    for (std::size_t e = 0; e < ne; ++e) {
        ErrorMechanism mech;
        mech.p = 1e-4 + rng.uniform() * max_p;
        std::size_t weight = 1 + rng.below(3);
        for (std::size_t k = 0; k < weight; ++k) {
            uint32_t d = (uint32_t)rng.below(nd);
            bool dup = false;
            for (uint32_t prev : mech.detectors) {
                if (prev == d) {
                    dup = true;
                }
            }
            if (!dup) {
                mech.detectors.push_back(d);
            }
        }
        std::sort(mech.detectors.begin(), mech.detectors.end());
        if (rng.below(3) == 0) {
            mech.observables.push_back((uint32_t)rng.below(2));
        }
        dem.errors.push_back(std::move(mech));
    }
    return dem;
}

Dem
circuitDem(code::CssCode (*build)(), std::size_t rounds, double p)
{
    auto cp = std::make_shared<const code::CssCode>(build());
    auto circ = circuit::buildMemoryCircuit(circuit::colorationSchedule(cp),
                                            rounds, circuit::MemoryBasis::Z);
    return buildDem(circ, NoiseModel::uniform(p));
}

/** The tested width matrix: scalar reference path, both AVX2 kernel
 * widths, an odd width (scalar remainder lanes), and the maximum. */
const std::size_t kWidths[] = {0, 4, 8, 5,
                               decoder::BpOsdDecoder::kMaxLaneWidth};

/** decodePacked == decodeBatch == decode for every lane width. */
void
expectPackedMatrixEquals(const Dem &dem, const FrameBatch &frames)
{
    SampleBatch rows;
    transposeFrames(frames, rows);
    // The laneWidth=0 reference: the PR 2 batched path.
    decoder::BpOsdOptions refOpts;
    refOpts.laneWidth = 0;
    decoder::BpOsdDecoder refDec(dem, refOpts);
    std::vector<uint64_t> batched(frames.shots);
    refDec.decodeBatch(rows, 0, frames.shots, batched.data());

    std::vector<uint64_t> viaPacked(frames.shots);
    decoder::PackedDecodeStats stats;
    refDec.decodePacked(frames.view(), viaPacked.data(), &stats);
    EXPECT_EQ(viaPacked, batched) << "laneWidth 0 adapter";
    EXPECT_EQ(stats.adapterShots, frames.shots);
    EXPECT_EQ(stats.packedShots, 0u);

    std::vector<uint32_t> scratch;
    for (std::size_t w : kWidths) {
        if (w == 0) {
            continue;
        }
        decoder::BpOsdOptions opts;
        opts.laneWidth = w;
        decoder::BpOsdDecoder dec(dem, opts);
        std::vector<uint64_t> lane(frames.shots, ~uint64_t{0});
        decoder::PackedDecodeStats st;
        dec.decodePacked(frames.view(), lane.data(), &st);
        EXPECT_EQ(st.packedShots, frames.shots) << "laneWidth " << w;
        EXPECT_EQ(st.adapterShots, 0u) << "laneWidth " << w;
        for (std::size_t s = 0; s < frames.shots; ++s) {
            ASSERT_EQ(lane[s], batched[s])
                << "laneWidth " << w << " shot " << s;
        }
        // Spot-check per-shot decode() on the same decoder instance: the
        // scalar entry point must agree after the lane engine ran (the
        // shared scratch invariants survived).
        for (std::size_t s = 0; s < std::min<std::size_t>(frames.shots, 64);
             ++s) {
            rows.flippedDetectors(s, scratch);
            ASSERT_EQ(dec.decode(scratch), batched[s])
                << "laneWidth " << w << " decode() shot " << s;
        }
    }
}

} // namespace

TEST(LaneDecode, MatrixOnRandomDems)
{
    for (uint64_t seed : {21u, 22u, 23u}) {
        Dem dem = randomDem(seed, 40, 120, 0.03);
        // 451 shots: a partial final word (451 = 7*64 + 3).
        FrameBatch frames = sampleDemFrames(dem, 451, seed * 5 + 3);
        expectPackedMatrixEquals(dem, frames);
    }
}

TEST(LaneDecode, MatrixOnLp39CircuitDem)
{
    Dem dem = circuitDem(code::benchmarkLp39, 3, 2e-3);
    FrameBatch frames = sampleDemFrames(dem, 333, 77);
    expectPackedMatrixEquals(dem, frames);
}

TEST(LaneDecode, MatrixOnRqt54CircuitDem)
{
    Dem dem = circuitDem(code::benchmarkRqt54, 4, 2e-3);
    FrameBatch frames = sampleDemFrames(dem, 129, 901);
    expectPackedMatrixEquals(dem, frames);
}

TEST(LaneDecode, OsdHeavyRegimeMatrix)
{
    // High noise plus a tiny iteration budget: most lanes retire without
    // BP convergence and flow through the batched OSD work queue. Every
    // lane width must still reproduce the laneWidth-0 batched path
    // observable for observable, across odd shot counts that leave a
    // partial final 64-shot word and force several queue flushes.
    for (std::size_t shots : {37u, 451u}) {
        Dem dem = randomDem(91, 48, 160, 0.12);
        FrameBatch frames = sampleDemFrames(dem, shots, 17);
        SampleBatch rows;
        transposeFrames(frames, rows);
        decoder::BpOsdOptions refOpts;
        refOpts.laneWidth = 0;
        refOpts.maxIterations = 3;
        decoder::BpOsdDecoder refDec(dem, refOpts);
        std::vector<uint64_t> batched(shots);
        refDec.decodeBatch(rows, 0, shots, batched.data());
        for (std::size_t w : kWidths) {
            if (w == 0) {
                continue;
            }
            decoder::BpOsdOptions opts;
            opts.laneWidth = w;
            opts.maxIterations = 3;
            decoder::BpOsdDecoder dec(dem, opts);
            std::vector<uint64_t> lane(shots, ~uint64_t{0});
            decoder::PackedDecodeStats st;
            dec.decodePacked(frames.view(), lane.data(), &st);
            EXPECT_EQ(lane, batched) << "laneWidth " << w;
            // The regime must actually exercise the batched OSD queue.
            EXPECT_GT(st.osdShots, shots / 4) << "laneWidth " << w;
        }
    }
}

TEST(LaneDecode, OsdHeavyCircuitDemAcrossThreads)
{
    // The packed pipeline end to end in an OSD-dominated regime:
    // failures and the osdShots counter must be thread- and
    // shard-invariant (the batched queue is per decodePacked call, and a
    // shot's OSD solve is independent of its queue companions).
    Dem dem = circuitDem(code::benchmarkLp39, 3, 6e-3);
    decoder::BpOsdOptions opts;
    opts.maxIterations = 4;
    decoder::BpOsdDecoder dec(dem, opts);
    decoder::LerOptions base;
    base.shardShots = 101; // odd shard size: ragged lane queues
    base.threads = 1;
    decoder::LerResult serial =
        decoder::measureDemLer(dem, dec, 707, 29, base);
    EXPECT_EQ(serial.shots, 707u);
    EXPECT_GT(serial.packed.osdShots, 0u);
    for (std::size_t threads : {2u, 4u}) {
        decoder::LerOptions par = base;
        par.threads = threads;
        decoder::LerResult r = decoder::measureDemLer(dem, dec, 707, 29, par);
        EXPECT_EQ(serial.failures, r.failures) << threads << " threads";
        EXPECT_EQ(serial.packed.osdShots, r.packed.osdShots)
            << threads << " threads";
    }
    // decodeBatch (scalar immediate OSD) must agree shot for shot with
    // decodePacked (batched OSD queue) on the same frames.
    FrameBatch frames = sampleDemFrames(dem, 707, shardSeed(29, 0));
    SampleBatch rows;
    transposeFrames(frames, rows);
    std::vector<uint64_t> viaBatch(707), viaPacked(707);
    dec.decodeBatch(rows, 0, 707, viaBatch.data());
    dec.decodePacked(frames.view(), viaPacked.data());
    EXPECT_EQ(viaPacked, viaBatch);
}

TEST(LaneDecode, GenericKernelMatchesAvx2)
{
    // PROPHUNT_NO_AVX512 steps down to the AVX2 kernels and
    // PROPHUNT_NO_AVX2 forces the scalar-lane kernels; predictions must
    // not change across any tier (on machines without the respective
    // extension a step compares a tier to itself, which still pins the
    // env-var plumbing).
    Dem dem = circuitDem(code::benchmarkLp39, 3, 2e-3);
    FrameBatch frames = sampleDemFrames(dem, 200, 5);
    decoder::BpOsdOptions opts;
    opts.laneWidth = 8;
    decoder::BpOsdDecoder dec(dem, opts);
    std::vector<uint64_t> vec(frames.shots), avx2(frames.shots),
        gen(frames.shots);
    dec.decodePacked(frames.view(), vec.data());
    // Restore the prior values afterwards — the CI scalar matrix leg
    // sets PROPHUNT_NO_AVX2 job-wide, and later tests in this binary
    // must keep running the tier that leg selected.
    const char *prevNo512 = getenv("PROPHUNT_NO_AVX512");
    std::string savedNo512 = prevNo512 ? prevNo512 : "";
    const char *prevNoAvx2 = getenv("PROPHUNT_NO_AVX2");
    std::string savedNoAvx2 = prevNoAvx2 ? prevNoAvx2 : "";
    setenv("PROPHUNT_NO_AVX512", "1", 1);
    decoder::BpOsdDecoder dec3(dem, opts);
    dec3.decodePacked(frames.view(), avx2.data());
    if (prevNo512 != nullptr) {
        setenv("PROPHUNT_NO_AVX512", savedNo512.c_str(), 1);
    } else {
        unsetenv("PROPHUNT_NO_AVX512");
    }
    setenv("PROPHUNT_NO_AVX2", "1", 1);
    decoder::BpOsdDecoder dec2(dem, opts);
    dec2.decodePacked(frames.view(), gen.data());
    if (prevNoAvx2 != nullptr) {
        setenv("PROPHUNT_NO_AVX2", savedNoAvx2.c_str(), 1);
    } else {
        unsetenv("PROPHUNT_NO_AVX2");
    }
    EXPECT_EQ(vec, avx2);
    EXPECT_EQ(vec, gen);
}

TEST(LaneDecode, DefaultAdapterServesRowDecoders)
{
    // A decoder without a native packed path goes through the transpose
    // adapter and must equal its own decodeBatch.
    code::SurfaceCode surface(3);
    auto cs = std::make_shared<const code::CssCode>(surface.code());
    auto circ = circuit::buildMemoryCircuit(
        circuit::colorationSchedule(cs), 3, circuit::MemoryBasis::Z);
    Dem dem = buildDem(circ, NoiseModel::uniform(5e-3));
    auto dec = decoder::makeDecoder(dem, circ, "union_find");
    FrameBatch frames = sampleDemFrames(dem, 259, 11);
    SampleBatch rows;
    transposeFrames(frames, rows);
    std::vector<uint64_t> batched(frames.shots), packed(frames.shots);
    dec->decodeBatch(rows, 0, frames.shots, batched.data());
    decoder::PackedDecodeStats stats;
    dec->decodePacked(frames.view(), packed.data(), &stats);
    EXPECT_EQ(packed, batched);
    EXPECT_EQ(stats.adapterShots, frames.shots);
    EXPECT_EQ(stats.packedShots, 0u);
}

TEST(LaneDecode, LerEngineThreadAndShardInvariantWithLanes)
{
    // The packed pipeline end to end: failures and packed-path telemetry
    // must not depend on thread count or shard size at a fixed seed (the
    // lane engine decodes shard-local queues, and a shot's result never
    // depends on which shots share its lanes).
    Dem dem = circuitDem(code::benchmarkLp39, 3, 4e-3);
    decoder::BpOsdDecoder dec(dem);
    decoder::LerOptions base;
    base.shardShots = 128;
    base.threads = 1;
    decoder::LerResult serial =
        decoder::measureDemLer(dem, dec, 1500, 31, base);
    EXPECT_EQ(serial.shots, 1500u);
    EXPECT_EQ(serial.packed.packedShots, 1500u);
    EXPECT_GT(serial.packed.laneSlotsTotal, 0u);
    for (std::size_t threads : {2u, 4u}) {
        decoder::LerOptions opts = base;
        opts.threads = threads;
        decoder::LerResult par =
            decoder::measureDemLer(dem, dec, 1500, 31, opts);
        EXPECT_EQ(serial.failures, par.failures) << threads << " threads";
        EXPECT_EQ(serial.packed.laneSlotsBusy, par.packed.laneSlotsBusy)
            << threads << " threads";
    }
    // Different shard sizes change the lane co-residency completely; the
    // failure count must not move (shot-order invariance).
    decoder::LerOptions bigShards = base;
    bigShards.shardShots = 1500;
    decoder::LerResult one =
        decoder::measureDemLer(dem, dec, 1500, 31, bigShards);
    // Shard seeds differ between plans, so compare against a direct
    // whole-batch decode at the single-shard seed instead.
    FrameBatch frames = sampleDemFrames(dem, 1500, shardSeed(31, 0));
    std::vector<uint64_t> pred(frames.shots);
    dec.decodePacked(frames.view(), pred.data());
    std::vector<uint64_t> masks;
    frames.obsMasks(masks);
    std::size_t failures = 0;
    for (std::size_t s = 0; s < frames.shots; ++s) {
        failures += pred[s] != masks[s];
    }
    EXPECT_EQ(one.failures, failures);
}
